// Package cli is the shared flag surface of the cobra command-line tools.
// Every tool used to re-invent the same wiring — design/topology selection,
// instruction budgets, -paranoid, -timeout, the observability trio
// (-metrics-addr, -pprof-addr, -progress), event capture — each with its own
// drift.  Here the flags are declared once, grouped, and parsed straight
// into the canonical spec.RunSpec, so "what a tool runs" and "what a server
// is asked to run" are the same serializable object.
package cli

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"time"

	"cobra/internal/backend"
	"cobra/internal/client"
	"cobra/internal/interval"
	"cobra/internal/obs"
	"cobra/internal/spec"
)

// Groups selects which flag groups a tool registers.
type Groups uint

const (
	// GDesign registers -design/-topology/-ghist/-policy.
	GDesign Groups = 1 << iota
	// GWorkload registers -workload.
	GWorkload
	// GBudget registers -insts/-warmup/-seed.
	GBudget
	// GHost registers -host/-serialized/-sfb.
	GHost
	// GGuard registers -paranoid/-timeout.
	GGuard
	// GFaults registers -faults/-fault-period/-fault-seed/-fault-comps.
	GFaults
	// GEvents registers -events/-events-buf/-top-branches.
	GEvents
	// GTelemetry registers -metrics-addr/-pprof-addr.
	GTelemetry
	// GProgress registers -progress (the periodic runner status line).
	GProgress
	// GServer registers -server (remote execution on a cobra-serve daemon).
	GServer
	// GDigest registers -print-digest (the shared digest=<sha256> provenance
	// line every spec-expanding tool emits the same way).
	GDigest
	// GIntervals registers -intervals/-interval-insts/-sparkline (windowed
	// interval telemetry: time-resolved IPC/MPKI/provider counters).
	GIntervals
)

// RunFlags holds the registered run-shaping flags.  Fields for groups a tool
// did not register stay nil and contribute their zero value to the spec.
// The embedded Base (-log-format, -version) is always registered; call
// Handle after flag.Parse to honor it.
type RunFlags struct {
	*Base

	Design   *string
	Topology *string
	GHist    *uint
	Policy   *string

	Workload *string

	Insts  *uint64
	Warmup *uint64
	Seed   *uint64

	Host       *string
	Serialized *bool
	SFB        *bool

	Paranoid *bool
	Timeout  *time.Duration

	Faults      *string
	FaultPeriod *uint64
	FaultSeed   *uint64
	FaultComps  *string

	Events      *string
	EventsBuf   *int
	TopBranches *int

	MetricsAddr *string
	PprofAddr   *string
	Progress    *time.Duration

	Server      *string
	PrintDigest *bool

	Intervals     *string
	IntervalInsts *uint64
	Sparkline     *bool
}

// AddRunFlags registers the selected groups on fs (pass flag.CommandLine for
// a tool's top level) and returns the handle that later builds the RunSpec.
func AddRunFlags(fs *flag.FlagSet, g Groups) *RunFlags {
	f := &RunFlags{Base: AddBaseFlags(fs)}
	if g&GDesign != 0 {
		f.Design = fs.String("design", "tage-l", "paper design: tage-l, b2, tourney (ignored with -topology)")
		f.Topology = fs.String("topology", "", "explicit topology string, e.g. \"GTAG3 > BTB2 > BIM2\"")
		f.GHist = fs.Uint("ghist", 64, "global history bits (with -topology)")
		f.Policy = fs.String("policy", "repair", "GHR policy: repair, replay, none (§VI-B)")
	}
	if g&GWorkload != 0 {
		f.Workload = fs.String("workload", "dhrystone", "workload name (SPECint proxy, dhrystone, coremark, or an ISA kernel)")
	}
	if g&GBudget != 0 {
		f.Insts = fs.Uint64("insts", spec.DefaultInsts, "architectural instructions to simulate")
		f.Warmup = fs.Uint64("warmup", 0, "instructions discarded before measurement")
		f.Seed = fs.Uint64("seed", spec.DefaultSeed, "workload seed")
	}
	if g&GHost != 0 {
		f.Host = fs.String("host", "boom", "host core: boom (Table II) or inorder (scalar)")
		f.Serialized = fs.Bool("serialized", false, "serialize fetch behind branches (§II-A)")
		f.SFB = fs.Bool("sfb", false, "enable short-forwards-branch predication (§VI-C)")
	}
	if g&GGuard != 0 {
		f.Paranoid = fs.Bool("paranoid", false, "arm the pipeline invariant checker; violations fail the run")
		f.Timeout = fs.Duration("timeout", 0, "abort after this wall-clock budget (0 = none)")
	}
	if g&GFaults != 0 {
		f.Faults = fs.String("faults", "", "fault kinds to inject (comma-separated, or 'all'; empty = none)")
		f.FaultPeriod = fs.Uint64("fault-period", 0, "mean fault-injection interval in opportunities (0 = off)")
		f.FaultSeed = fs.Uint64("fault-seed", 1, "fault-injection decision-stream seed")
		f.FaultComps = fs.String("fault-comps", "", "restrict injection to these component instances (comma-separated)")
	}
	if g&GEvents != 0 {
		f.Events = fs.String("events", "", "capture the cycle-level event trace to this file (.json = Chrome trace_event for Perfetto, otherwise compact binary for cobra-events)")
		f.EventsBuf = fs.Int("events-buf", 0, "event ring-buffer capacity (0 = default 65536; older events are dropped)")
		f.TopBranches = fs.Int("top-branches", 0, "print the H2P table of the N hardest-to-predict branches")
	}
	if g&GTelemetry != 0 {
		f.MetricsAddr = fs.String("metrics-addr", "", "serve live Prometheus-style metrics on this address (e.g. 127.0.0.1:9090)")
		f.PprofAddr = fs.String("pprof-addr", "", "serve net/http/pprof (profiles + runtime trace) on this address")
	}
	if g&GProgress != 0 {
		f.Progress = fs.Duration("progress", 0, "print a runner status line to stderr at this period (0 = off)")
	}
	if g&GServer != 0 {
		f.Server = fs.String("server", "", "execute on the cobra-serve daemon at this URL instead of in-process (results are byte-identical; retries ride out restarts)")
	}
	if g&GDigest != 0 {
		f.PrintDigest = fs.Bool("print-digest", false, "emit one digest=<sha256> provenance line per executed run spec on stderr (matches the run_digest in serve logs and the journal)")
	}
	if g&GIntervals != 0 {
		f.Intervals = fs.String("intervals", "", "write windowed interval telemetry to this .ivl file (CBRAIVL1 binary; diff two with cobra-diff)")
		f.IntervalInsts = fs.Uint64("interval-insts", 0, fmt.Sprintf("interval window size in instructions (0 = %d when -intervals or -sparkline turns sampling on)", interval.DefaultInsts))
		f.Sparkline = fs.Bool("sparkline", false, "render per-window IPC and MPKI sparklines after the run")
	}
	return f
}

// ServerURL returns the -server flag's value ("" = run in-process).
func (f *RunFlags) ServerURL() string { return str(f.Server) }

// DigestWriter returns the sink -print-digest selects: stderr when the flag
// is set, nil otherwise.  Tools hand it to whatever expands their run specs
// so every digest=<sha256> line renders through EmitDigest's one format.
func (f *RunFlags) DigestWriter() io.Writer {
	if f.PrintDigest != nil && *f.PrintDigest {
		return os.Stderr
	}
	return nil
}

// EmitDigest writes the shared provenance line for one run spec digest —
// the same digest=<sha256:...> key=value pair the serve logs and the run
// journal carry, so a local invocation and a daemon's records grep alike.
// A nil writer drops the line, letting callers pass DigestWriter() through
// unconditionally.
func EmitDigest(w io.Writer, digest string) {
	if w == nil {
		return
	}
	fmt.Fprintf(w, "digest=%s\n", digest)
}

// ResolveBackend turns the -server flag into the execution backend the tool
// runs on: a backend.Remote for a non-empty URL (onProgress, when non-nil,
// receives the daemon's live progress frames), a backend.Local over met
// otherwise.  remote reports which way it went, for the few capabilities a
// wire result cannot carry.
func (f *RunFlags) ResolveBackend(tool string, met *obs.Metrics, onProgress func(client.Progress)) (be backend.Backend, remote bool, err error) {
	url := f.ServerURL()
	if url == "" {
		return &backend.Local{Metrics: met}, false, nil
	}
	logger, err := f.Logger(tool)
	if err != nil {
		return nil, false, err
	}
	r, err := backend.NewRemote(client.Config{BaseURL: url, Log: logger, OnProgress: onProgress})
	if err != nil {
		return nil, false, err
	}
	return r, true, nil
}

// SetDefault overrides a registered flag's default before Parse — tools with
// grid-shaped work (many points per invocation) use smaller per-point budgets
// than the single-run tools.  Panics on an unknown flag or unparsable value:
// both are programming errors in the tool, not user input.
func SetDefault(fs *flag.FlagSet, name, value string) {
	fl := fs.Lookup(name)
	if fl == nil {
		panic("cli: SetDefault on unregistered flag -" + name)
	}
	if err := fl.Value.Set(value); err != nil {
		panic("cli: SetDefault(-" + name + ", " + value + "): " + err.Error())
	}
	fl.DefValue = value
}

func str(p *string) string {
	if p == nil {
		return ""
	}
	return *p
}

// Spec assembles the RunSpec the parsed flags describe: the Table I preset
// named by -design (or the explicit -topology with -ghist/-policy applied),
// the workload, budgets, host toggles, guard settings, fault plan, and
// observer configuration.  It does not canonicalize; callers that need the
// digest or defaults made explicit do that next.
func (f *RunFlags) Spec() (*spec.RunSpec, error) {
	s := &spec.RunSpec{}
	if f.Design != nil {
		if topo := str(f.Topology); topo != "" {
			s.Design = "custom"
			s.Topology = topo
			if f.GHist != nil {
				s.Pipeline.GHistBits = *f.GHist
			}
		} else {
			d, err := Preset(*f.Design)
			if err != nil {
				return nil, err
			}
			*s = *d
		}
		if f.Policy != nil {
			switch *f.Policy {
			case "repair", "replay", "none":
				s.Pipeline.GHRPolicy = *f.Policy
			default:
				return nil, fmt.Errorf("unknown -policy %q (repair, replay, none)", *f.Policy)
			}
		}
	}
	if f.Workload != nil {
		s.Workload = *f.Workload
	}
	if f.Insts != nil {
		s.Insts = *f.Insts
	}
	if f.Warmup != nil {
		s.Warmup = *f.Warmup
	}
	if f.Seed != nil {
		s.Seed = *f.Seed
	}
	if f.Host != nil {
		switch *f.Host {
		case "boom", "inorder":
			s.Host = *f.Host
		default:
			return nil, fmt.Errorf("unknown -host %q (boom, inorder)", *f.Host)
		}
		s.SerializedFetch = *f.Serialized
		s.SFB = *f.SFB
	}
	if f.Paranoid != nil {
		s.Paranoid = s.Paranoid || *f.Paranoid
	}
	if f.Timeout != nil && *f.Timeout > 0 {
		s.TimeoutMS = f.Timeout.Milliseconds()
		if s.TimeoutMS == 0 {
			s.TimeoutMS = 1 // sub-millisecond budgets still time out
		}
	}
	if f.Faults != nil && (*f.Faults != "" || *f.FaultPeriod > 0) {
		if *f.Faults == "" || *f.FaultPeriod == 0 {
			return nil, fmt.Errorf("fault injection needs both -faults and -fault-period")
		}
		s.Faults = &spec.FaultPlan{
			Seed:   *f.FaultSeed,
			Period: *f.FaultPeriod,
			Kinds:  strings.Split(*f.Faults, ","),
		}
		if cs := str(f.FaultComps); cs != "" {
			s.Faults.Components = strings.Split(cs, ",")
		}
	}
	if f.Events != nil && *f.Events != "" {
		s.Observe.Events = true
		s.Observe.EventsBuf = *f.EventsBuf
	}
	if f.TopBranches != nil && *f.TopBranches > 0 {
		s.Observe.Attribution = true
	}
	f.ApplyIntervals(s)
	return s, nil
}

// ApplyIntervals stamps the interval-telemetry flags onto a spec: an explicit
// -interval-insts sets the window size directly, while -intervals/-sparkline
// without one turn sampling on at the default window.  Exported separately
// from Spec so tools that load spec files (rather than build specs from
// flags) can apply the same output-shaping overrides.
func (f *RunFlags) ApplyIntervals(s *spec.RunSpec) {
	if f.IntervalInsts != nil && *f.IntervalInsts > 0 {
		s.Observe.IntervalInsts = *f.IntervalInsts
	} else if s.Observe.IntervalInsts == 0 && (str(f.Intervals) != "" || f.Sparkline != nil && *f.Sparkline) {
		s.Observe.IntervalInsts = interval.DefaultInsts
	}
}

// IntervalsPath returns the -intervals flag's value ("" = no .ivl output).
func (f *RunFlags) IntervalsPath() string { return str(f.Intervals) }

// WantSparkline reports whether -sparkline asked for terminal sparklines.
func (f *RunFlags) WantSparkline() bool { return f.Sparkline != nil && *f.Sparkline }

// Preset returns the named Table I design point as a spec (see spec.Preset).
func Preset(name string) (*spec.RunSpec, error) { return spec.Preset(name) }

// Telemetry wires the -metrics-addr/-pprof-addr/-progress flags: it creates
// a metrics sink when anything needs one, starts the listeners, and returns
// the sink (possibly nil), the progress period (0 = off), and a closer that
// releases the listeners.  Endpoint addresses are announced on stderr.
func (f *RunFlags) Telemetry(tool string) (*obs.Metrics, time.Duration, func(), error) {
	var (
		met      *obs.Metrics
		progress time.Duration
		closers  []func() error
	)
	closeAll := func() {
		for _, c := range closers {
			c() //nolint:errcheck
		}
	}
	if f.Progress != nil {
		progress = *f.Progress
	}
	if progress > 0 || str(f.MetricsAddr) != "" {
		met = obs.NewMetrics()
	}
	if addr := str(f.MetricsAddr); addr != "" {
		bound, close, err := obs.ServeMetrics(addr, met)
		if err != nil {
			return nil, 0, nil, fmt.Errorf("metrics listener: %w", err)
		}
		closers = append(closers, close)
		slog.Info("serving metrics", "tool", tool, "url", "http://"+bound+"/metrics")
	}
	if addr := str(f.PprofAddr); addr != "" {
		bound, close, err := obs.ServePprof(addr)
		if err != nil {
			closeAll()
			return nil, 0, nil, fmt.Errorf("pprof listener: %w", err)
		}
		closers = append(closers, close)
		slog.Info("serving pprof", "tool", tool, "url", "http://"+bound+"/debug/pprof/")
	}
	return met, progress, closeAll, nil
}

// Main wraps a tool's entry point with the shared error convention
// ("tool: error" on stderr, exit status 1) and the crash post-mortem: a
// panic on the main goroutine dumps the flight recorder before the process
// dies with the original panic.
func Main(tool string, run func() error) {
	defer obs.DumpFlightOnPanic()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, tool+":", err)
		os.Exit(1)
	}
}

// ExitAfter arms the hard wall-clock guard used by tools without a
// cooperative cancellation path: after d the process reports the timeout and
// exits non-zero.  A zero or negative d is a no-op.
func ExitAfter(tool string, d time.Duration) {
	if d <= 0 {
		return
	}
	time.AfterFunc(d, func() {
		fmt.Fprintf(os.Stderr, "%s: timeout after %v\n", tool, d)
		os.Exit(1)
	})
}

// LoadSpec reads and parses a RunSpec JSON file.
func LoadSpec(path string) (*spec.RunSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return spec.Parse(data)
}
