package cli

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"

	"cobra/internal/obs"
)

// Base holds the flags every cobra binary shares regardless of what it runs:
// the structured-log format and the build-identity query.  AddRunFlags
// embeds one into its RunFlags; tools without run flags (cobra-serve)
// register it directly with AddBaseFlags.
type Base struct {
	LogFormat *string
	Version   *bool
}

// AddBaseFlags registers -log-format and -version on fs.
func AddBaseFlags(fs *flag.FlagSet) *Base {
	return &Base{
		LogFormat: fs.String("log-format", "text", "diagnostic log format on stderr: text or json"),
		Version:   fs.Bool("version", false, "print build information and exit"),
	}
}

// Logger builds the tool's structured logger per -log-format: line-oriented
// key=value text for humans, one JSON object per line for log pipelines.
// Every record carries the tool name.
func (b *Base) Logger(tool string) (*slog.Logger, error) {
	return NewLogger(os.Stderr, str(b.LogFormat), tool)
}

// NewLogger builds a slog logger writing format ("text", "json", or "" for
// text) to w, with the tool name attached to every record.  Every record is
// also teed into the process flight recorder (armed here if it was not
// already), all levels included, so a crash dump carries the recent log
// context even when the visible log was quieter.
func NewLogger(w io.Writer, format, tool string) (*slog.Logger, error) {
	var h slog.Handler
	switch format {
	case "", "text":
		h = slog.NewTextHandler(w, nil)
	case "json":
		h = slog.NewJSONHandler(w, nil)
	default:
		return nil, fmt.Errorf("unknown -log-format %q (text, json)", format)
	}
	h = obs.NewFlightHandler(h, obs.EnableFlight(0))
	return slog.New(h).With("tool", tool), nil
}

// DiscardLogger returns a logger that drops every record — the nil-config
// default for embedded servers and tests.
func DiscardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// Handle finishes base-flag processing after flag.Parse: it installs the
// tool's structured logger as the slog default (so shared helpers like
// Telemetry log in the requested format) and, under -version, prints the
// build identity and reports that the tool should exit.
func (b *Base) Handle(tool string) (exit bool, err error) {
	l, err := b.Logger(tool)
	if err != nil {
		return false, err
	}
	slog.SetDefault(l)
	if b.Version != nil && *b.Version {
		fmt.Println(tool + " " + obs.BuildInfo().String())
		return true, nil
	}
	return false, nil
}
