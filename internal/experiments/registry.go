package experiments

import (
	"fmt"
	"strings"
)

// entry is one renderable paper artifact: a table, figure, or discussion
// experiment, addressed by the id cobra-experiments and cobra-compose use.
type entry struct {
	id string
	// simulated marks entries whose bytes come from simulation grids (and
	// therefore scale with Config); static entries render from configuration
	// alone.
	simulated bool
	render    func(Config) string
}

// registry lists every experiment in cobra-experiments' canonical order.
// One table: the tool's -exp switch, the fleet executor's `experiment:`
// services, and the documentation of valid ids all read from here.
var registry = []entry{
	{"table1", false, func(Config) string { return TableI().String() }},
	{"table2", false, func(Config) string { return TableII().String() }},
	{"table3", false, func(Config) string { return TableIII().String() }},
	{"fig8", false, func(Config) string { return Fig8() }},
	{"fig9", false, func(Config) string { return Fig9() }},
	{"fig10", true, func(c Config) string { _, t := Fig10(c); return t.String() }},
	{"d1", true, func(c Config) string { return SerializedFetch(c).String() }},
	{"d2", true, func(c Config) string { return TageLatency(c).String() }},
	{"d3", true, func(c Config) string { return HistoryRepair(c).String() }},
	{"d4", true, func(c Config) string { return SFB(c).String() }},
	{"tracegap", true, func(c Config) string { return TraceGap(c).String() }},
	{"energy", true, func(c Config) string { return Energy(c).String() }},
	{"h2p", true, func(c Config) string { return H2P(c).String() }},
	{"shootout", true, func(c Config) string { return Shootout(c).String() }},
	{"ablation-loop", true, func(c Config) string { return AblationLoop(c).String() }},
	{"ablation-ubtb", true, func(c Config) string { return AblationUBTB(c).String() }},
	{"ablation-meta", false, func(Config) string { return AblationMetadata().String() }},
	{"ablation-width", true, func(c Config) string { return AblationWidth(c).String() }},
}

// Ids lists every experiment id in canonical (paper) order.
func Ids() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.id
	}
	return out
}

// Known reports whether id names a registered experiment.
func Known(id string) bool {
	for _, e := range registry {
		if e.id == id {
			return true
		}
	}
	return false
}

// Simulated reports whether id's bytes depend on simulation (and therefore
// on Config budgets); static tables render from configuration alone.
// Unknown ids report false.
func Simulated(id string) bool {
	for _, e := range registry {
		if e.id == id {
			return e.simulated
		}
	}
	return false
}

// Render produces the named experiment's output — the exact bytes
// cobra-experiments prints for it (without the trailing newline Println
// adds).  Simulation-backed experiments run under cfg, including its
// Backend when set.
func Render(id string, cfg Config) (string, error) {
	for _, e := range registry {
		if e.id == id {
			return e.render(cfg), nil
		}
	}
	return "", fmt.Errorf("unknown experiment %q (have %s)", id, strings.Join(Ids(), " "))
}
