package experiments

import (
	"strings"
	"testing"
)

func tiny() Config { return Config{Insts: 40000, Seed: 7} }

func TestTables(t *testing.T) {
	t1 := TableI()
	if !strings.Contains(t1.String(), "tage-l") || !strings.Contains(t1.String(), "KB") {
		t.Errorf("Table I malformed:\n%s", t1)
	}
	t2 := TableII()
	if !strings.Contains(t2.String(), "128-entry ROB") {
		t.Errorf("Table II malformed:\n%s", t2)
	}
	t3 := TableIII()
	if len(t3.Rows) != 5 {
		t.Errorf("Table III rows = %d", len(t3.Rows))
	}
}

func TestFigs8And9(t *testing.T) {
	f8 := Fig8()
	for _, want := range []string{"TAGE3", "meta", "UBTB1"} {
		if !strings.Contains(f8, want) {
			t.Errorf("Fig8 missing %q", want)
		}
	}
	f9 := Fig9()
	for _, want := range []string{"branch-pred", "issue-units", "dcache"} {
		if !strings.Contains(f9, want) {
			t.Errorf("Fig9 missing %q", want)
		}
	}
}

func TestFig10Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("50 simulations")
	}
	rows, table := Fig10(Config{Insts: 15000, Seed: 7})
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		for _, sys := range Fig10Systems {
			if r.IPC[sys] <= 0 {
				t.Errorf("%s/%s: zero IPC", r.Workload, sys)
			}
		}
	}
	if !strings.Contains(table.String(), "HARMEAN") {
		t.Error("missing HARMEAN summary")
	}
}

func TestDiscussionExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("several simulations each")
	}
	d1 := SerializedFetch(tiny())
	if len(d1.Rows) != 2 {
		t.Errorf("D1 rows = %d", len(d1.Rows))
	}
	d4 := SFB(tiny())
	if len(d4.Rows) != 2 {
		t.Errorf("D4 rows = %d", len(d4.Rows))
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("several simulations each")
	}
	if len(AblationLoop(tiny()).Rows) == 0 {
		t.Error("loop ablation empty")
	}
	if len(AblationUBTB(tiny()).Rows) == 0 {
		t.Error("uBTB ablation empty")
	}
	am := AblationMetadata()
	if len(am.Rows) != 3 {
		t.Error("metadata ablation rows")
	}
	// The extra read port must cost area in every design.
	for _, r := range am.Rows {
		if !strings.Contains(r[3], "+") {
			t.Errorf("metadata ablation shows no overhead: %v", r)
		}
	}
}

func TestTraceGapSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("captures + simulations")
	}
	tg := TraceGap(Config{Insts: 30000, Seed: 7})
	if len(tg.Rows) != 6 {
		t.Errorf("trace gap rows = %d", len(tg.Rows))
	}
}
