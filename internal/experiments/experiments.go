// Package experiments implements the reproduction harness: one entry point
// per table and figure of the paper plus the §VI discussion experiments and
// the ablations DESIGN.md calls out.  The cmd/cobra-experiments tool and the
// top-level benchmarks both drive these functions, so the printed rows are
// identical either way.
package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"cobra/internal/area"
	"cobra/internal/backend"
	"cobra/internal/commercial"
	"cobra/internal/compose"
	"cobra/internal/obs"
	"cobra/internal/pred"
	"cobra/internal/runner"
	"cobra/internal/spec"
	"cobra/internal/stats"
	"cobra/internal/trace"
	"cobra/internal/uarch"
	"cobra/internal/workloads"
)

// Config scales the experiments.
type Config struct {
	Insts  uint64 // architectural instructions per measured run
	Warmup uint64 // instructions discarded before measurement
	Seed   uint64

	// Parallelism caps the worker goroutines the runner fans simulations
	// out on: 0 means GOMAXPROCS, 1 forces the serial path.  Results are
	// bit-identical for every value (see internal/runner).
	Parallelism int

	// Paranoid arms the pipeline invariant checker on every simulated
	// design; any violation fails the experiment loudly.  The checker is
	// observation-only, so tables are byte-identical either way.
	Paranoid bool

	// Timeout, when > 0, bounds each simulation's wall-clock time via the
	// runner's per-job context.
	Timeout time.Duration

	// Metrics, when non-nil, receives live batch telemetry from every grid
	// the experiments fan out (served by cobra-experiments -metrics-addr).
	Metrics *obs.Metrics

	// Backend, when non-nil, executes every runAll grid through the unified
	// Backend interface instead of the in-process fast path: each grid
	// point becomes a canonical RunSpec carrying the exact per-index seed
	// the local runner would derive, so the returned counters are
	// byte-identical either way — for a backend.Local trivially, and for a
	// backend.Remote because the daemon runs the same spec.Exec.
	// Experiments that need in-process handles (pipeline inspection for
	// energy accounting, attribution profiles, pre-built programs) keep
	// running locally regardless.
	Backend backend.Backend
	// Digests, when non-nil, receives one "digest=<sha256>" line per grid
	// spec before it runs (Backend path only) — the shared -print-digest
	// surface of the CLI tools.
	Digests io.Writer
	// Progress, when non-nil, gets a periodic one-line status report while
	// a grid runs (cobra-experiments -progress).
	Progress io.Writer
	// ProgressEvery overrides the progress period (default 5s).
	ProgressEvery time.Duration
}

// Defaults fills zero fields.
func (c Config) Defaults() Config {
	if c.Insts == 0 {
		c.Insts = 1_000_000
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// design mirrors the facade's Table I design points (duplicated here to
// keep internal packages independent of the root package).
type design struct {
	name string
	topo string
	opt  compose.Options
}

func designs() []design {
	return []design{
		{"tourney", "TOURNEY3 > [GBIM2 > BTB2, LBIM2]",
			compose.Options{GHistBits: 32, LocalEntries: 256, LocalHistBits: 32}},
		{"b2", "GTAG3 > BTB2 > BIM2", compose.Options{GHistBits: 16}},
		{"tage-l", "LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1", compose.Options{GHistBits: 64}},
	}
}

func pipeline(d design) *compose.Pipeline {
	p, err := compose.New(pred.DefaultConfig(), compose.MustParse(d.topo), d.opt)
	if err != nil {
		panic(fmt.Sprintf("experiments: %s: %v", d.name, err))
	}
	return p
}

// run executes one (design, workload) full-core simulation with the batch
// base seed, discarding the warm-up slice when configured.  Only TraceGap
// still uses this direct path: its in-core run must share cfg.Seed with the
// trace capture it is compared against.  Every other experiment submits its
// grid to the parallel runner via runAll.
func run(d design, workload string, core uarch.Config, cfg Config) *stats.Sim {
	d.opt.Paranoid = d.opt.Paranoid || cfg.Paranoid
	bp := pipeline(d)
	prog, err := workloads.Get(workload)
	if err != nil {
		panic(err)
	}
	c := uarch.NewCore(core, bp, prog, cfg.Seed)
	if cfg.Warmup > 0 {
		c.Run(cfg.Warmup)
		c.ResetStats()
	}
	s := c.Run(cfg.Insts)
	checkParanoid(d.topo, workload, bp)
	return s
}

// checkParanoid fails an experiment loudly on invariant violations (only
// possible when paranoid mode is armed).
func checkParanoid(topo, workload string, p *compose.Pipeline) {
	if p == nil || p.ViolationCount() == 0 {
		return
	}
	panic(fmt.Sprintf("experiments: %d invariant violations (%q on %s); first: %v",
		p.ViolationCount(), topo, workload, p.Violations()[0]))
}

// job describes one grid point for the parallel runner.
func (c Config) job(d design, workload string, core uarch.Config) runner.Sim {
	opt := d.opt
	opt.Paranoid = opt.Paranoid || c.Paranoid
	return runner.Sim{
		Topology: d.topo, Opt: opt, Workload: workload,
		Core: core, Insts: c.Insts, Warmup: c.Warmup,
	}
}

// runnerOptions builds the batch options an experiment grid runs under.
func (c Config) runnerOptions() runner.Options {
	return runner.Options{Workers: c.Parallelism, Seed: c.Seed, Timeout: c.Timeout,
		Metrics: c.Metrics, Progress: c.Progress, ProgressEvery: c.ProgressEvery}
}

// runAll fans an experiment's independent simulations out across
// c.Parallelism workers; results come back in submission order.  With
// Config.Backend set the same grid executes through the unified backend
// instead, byte-identically (see runAllBackend).
func (c Config) runAll(jobs []runner.Sim) []*stats.Sim {
	if c.Backend != nil && remotable(jobs) {
		return c.runAllBackend(jobs)
	}
	full, err := runner.RunFull(jobs, c.runnerOptions())
	if err != nil {
		panic("experiments: " + err.Error())
	}
	out := make([]*stats.Sim, len(full))
	for i, r := range full {
		checkParanoid(jobs[i].Topology, jobs[i].Workload, r.Pipeline)
		out[i] = r.Sim
	}
	return out
}

// remotable reports whether every job in a grid can be described as a
// RunSpec: jobs carrying a pre-built program (custom fetch geometries) have
// no workload reference and must run in-process.
func remotable(jobs []runner.Sim) bool {
	for _, j := range jobs {
		if j.Prog != nil {
			return false
		}
	}
	return true
}

// runAllBackend submits a grid to Config.Backend.  Job i becomes the
// canonical RunSpec with seed Derive(c.Seed, i) — exactly the seed the local
// RunFull path would hand it — so the backend's counters (and therefore
// every printed table cell) match the in-process fast path bit for bit.
// The paranoid guard still holds: the spec carries the flag and spec.Exec
// fails the run on any invariant violation, which surfaces here as a run
// error.  Failures panic like the local path does.
func (c Config) runAllBackend(jobs []runner.Sim) []*stats.Sim {
	specs := make([]*spec.RunSpec, len(jobs))
	for i := range jobs {
		sp, err := runner.FromSim(jobs[i], runner.Derive(c.Seed, uint64(i)))
		if err != nil {
			panic(fmt.Sprintf("experiments: %q on %s: %v", jobs[i].Topology, jobs[i].Workload, err))
		}
		specs[i] = sp
		if c.Digests != nil {
			d, err := sp.Digest()
			if err != nil {
				panic("experiments: " + err.Error())
			}
			fmt.Fprintf(c.Digests, "digest=%s\n", d)
		}
	}
	outs, err := backend.All(context.Background(), c.Backend, specs, c.Parallelism)
	if err != nil {
		panic(fmt.Sprintf("experiments: backend %s: %v", c.Backend.Name(), err))
	}
	out := make([]*stats.Sim, len(outs))
	for i, o := range outs {
		out[i] = o.Stats
	}
	return out
}

// ---- Table I ----

// TableI regenerates the design-parameter/storage table.
func TableI() *stats.Table {
	t := &stats.Table{
		Title:   "Table I — parameters of evaluated COBRA-designed predictors",
		Headers: []string{"design", "description", "storage"},
	}
	desc := map[string][]string{
		"tourney": {
			"32-bit global, 256x32-bit local histories",
			"2K-entry BTB w. 16K-entry 2-bit BHT",
			"1K tournament counters",
		},
		"b2": {
			"16-bit global history",
			"2K partially tagged + 16K untagged counters",
			"2K-entry BTB",
		},
		"tage-l": {
			"64-bit global history",
			"7 TAGE tables",
			"2K-entry BTB w. 32-entry uBTB",
			"256-entry loop predictor",
		},
	}
	for _, d := range designs() {
		p := pipeline(d)
		bits := 0
		for _, b := range p.ComponentBudgets() {
			bits += b.TotalBits()
		}
		kb := float64(bits) / 8 / 1024
		for i, line := range desc[d.name] {
			name, storage := "", ""
			if i == 0 {
				name = d.name
				storage = fmt.Sprintf("%.1f KB", kb)
			}
			t.AddRow(name, line, storage)
		}
	}
	return t
}

// ---- Table II ----

// TableII regenerates the core-configuration table from the live config.
func TableII() *stats.Table {
	c := uarch.DefaultConfig()
	t := &stats.Table{
		Title:   "Table II — evaluated BOOM configuration",
		Headers: []string{"unit", "configuration"},
	}
	t.AddRow("Frontend", fmt.Sprintf("%d-byte wide fetch", c.Fetch.PktBytes()))
	t.AddRow("", fmt.Sprintf("%d-wide decode/rename/commit", c.DecodeWidth))
	t.AddRow("Execute", fmt.Sprintf("%d-entry ROB", c.ROBEntries))
	t.AddRow("", fmt.Sprintf("%d pipelines (%d ALU, %d MEM, %d FP)",
		c.NumALU+c.NumMem+c.NumFP, c.NumALU, c.NumMem, c.NumFP))
	t.AddRow("", fmt.Sprintf("3x %d-entry IQs (INT, MEM, FP)", c.IQEntries))
	t.AddRow("Load-Store Unit", fmt.Sprintf("%d-entry LDQ, %d-entry STQ", c.LDQEntries, c.STQEntries))
	t.AddRow("", fmt.Sprintf("%d LD or %d ST per cycle", c.NumMem, c.NumMem))
	t.AddRow("L1 DCache", fmt.Sprintf("%d-way %d KB", c.L1Ways, c.L1Sets*c.L1Ways*c.LineBytes/1024))
	t.AddRow("L2 Cache", fmt.Sprintf("%d-way %d KB", c.L2Ways, c.L2Sets*c.L2Ways*c.LineBytes/1024))
	t.AddRow("Memory", fmt.Sprintf("flat %d-cycle latency (FASED model substitute)", c.MemLat))
	return t
}

// ---- Table III ----

// TableIII regenerates the evaluated-systems table.
func TableIII() *stats.Table {
	t := &stats.Table{
		Title:   "Table III — evaluated systems for SPECint17 proxy comparison",
		Headers: []string{"core", "predictor", "platform"},
	}
	for _, s := range commercial.Systems() {
		t.AddRow(s.Name, s.Topology, "cycle-level model (commercial proxy; paper: real silicon)")
	}
	for _, d := range designs() {
		t.AddRow("boom/"+d.name, d.topo, "cycle-level model (paper: FireSim FPGA simulation)")
	}
	return t
}

// ---- Fig. 8 / Fig. 9 ----

// Fig8 renders the predictor-area breakdowns.
func Fig8() string {
	var b strings.Builder
	b.WriteString("Fig. 8 — predictor area breakdown by sub-component\n\n")
	for _, d := range designs() {
		b.WriteString(area.Predictor(pipeline(d)).Render())
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig9 renders the whole-core breakdowns.
func Fig9() string {
	var b strings.Builder
	b.WriteString("Fig. 9 — core area breakdown with each predictor\n\n")
	for _, d := range designs() {
		b.WriteString(area.Core(pipeline(d), uarch.DefaultConfig()).Render())
		b.WriteByte('\n')
	}
	return b.String()
}

// ---- Fig. 10 ----

// Fig10Row is one benchmark's results across systems.
type Fig10Row struct {
	Workload string
	MPKI     map[string]float64
	IPC      map[string]float64
}

// Fig10Systems is the evaluation order of Fig. 10.
var Fig10Systems = []string{"skylake", "graviton", "tourney", "b2", "tage-l"}

// Fig10 runs the 10 SPECint proxies across the five systems — a 50-point
// embarrassingly parallel grid — and returns per-benchmark rows plus a
// rendered table with HARMEAN summary rows.
func Fig10(cfg Config) ([]Fig10Row, *stats.Table) {
	cfg = cfg.Defaults()
	type point struct{ workload, system string }
	var jobs []runner.Sim
	var grid []point
	for _, w := range workloads.Names() {
		for _, sys := range commercial.Systems() {
			jobs = append(jobs, cfg.job(design{sys.Name, sys.Topology, sys.Opt}, w, sys.Core))
			grid = append(grid, point{w, sys.Name})
		}
		for _, d := range designs() {
			jobs = append(jobs, cfg.job(d, w, uarch.DefaultConfig()))
			grid = append(grid, point{w, d.name})
		}
	}
	results := cfg.runAll(jobs)
	rows := make([]Fig10Row, 0, 10)
	byName := map[string]*Fig10Row{}
	for _, w := range workloads.Names() {
		rows = append(rows, Fig10Row{Workload: w, MPKI: map[string]float64{}, IPC: map[string]float64{}})
		byName[w] = &rows[len(rows)-1]
	}
	for i, res := range results {
		row := byName[grid[i].workload]
		row.MPKI[grid[i].system] = res.MPKI()
		row.IPC[grid[i].system] = res.IPC()
	}
	return rows, renderFig10(rows)
}

func renderFig10(rows []Fig10Row) *stats.Table {
	t := &stats.Table{
		Title:   "Fig. 10 — branch MPKI and IPC across systems (HARMEAN = harmonic mean)",
		Headers: []string{"benchmark", "metric"},
	}
	for _, s := range Fig10Systems {
		t.Headers = append(t.Headers, s)
	}
	hm := map[string]struct{ mpki, ipc []float64 }{}
	for _, r := range rows {
		mp := []string{r.Workload, "MPKI"}
		ip := []string{"", "IPC"}
		for _, s := range Fig10Systems {
			mp = append(mp, fmt.Sprintf("%.2f", r.MPKI[s]))
			ip = append(ip, fmt.Sprintf("%.3f", r.IPC[s]))
			e := hm[s]
			e.mpki = append(e.mpki, r.MPKI[s])
			e.ipc = append(e.ipc, r.IPC[s])
			hm[s] = e
		}
		t.AddRow(mp...)
		t.AddRow(ip...)
	}
	mp := []string{"HARMEAN", "MPKI"}
	ip := []string{"", "IPC"}
	for _, s := range Fig10Systems {
		m, _ := stats.HarmonicMean(positive(hm[s].mpki))
		i, _ := stats.HarmonicMean(hm[s].ipc)
		mp = append(mp, fmt.Sprintf("%.2f", m))
		ip = append(ip, fmt.Sprintf("%.3f", i))
	}
	t.AddRow(mp...)
	t.AddRow(ip...)
	return t
}

func positive(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x > 0 {
			out = append(out, x)
		}
	}
	if len(out) == 0 {
		return []float64{1e-9}
	}
	return out
}

// ---- §II-A / D1: serialized fetch ----

// SerializedFetch compares superscalar vs serialized fetch on Dhrystone
// (the paper measured a 15% IPC drop).
func SerializedFetch(cfg Config) *stats.Table {
	cfg = cfg.Defaults()
	t := &stats.Table{
		Title:   "D1 — serializing fetch behind branches (paper: -15% IPC on Dhrystone)",
		Headers: []string{"fetch mode", "IPC", "MPKI", "delta-IPC"},
	}
	base := uarch.DefaultConfig()
	serialCfg := base
	serialCfg.SerializedFetch = true
	res := cfg.runAll([]runner.Sim{
		cfg.job(designs()[2], "dhrystone", base),
		cfg.job(designs()[2], "dhrystone", serialCfg),
	})
	wide, serial := res[0], res[1]
	t.AddRow("superscalar", fmt.Sprintf("%.3f", wide.IPC()), fmt.Sprintf("%.2f", wide.MPKI()), "-")
	t.AddRow("serialized", fmt.Sprintf("%.3f", serial.IPC()), fmt.Sprintf("%.2f", serial.MPKI()),
		fmt.Sprintf("%+.1f%%", (serial.IPC()/wide.IPC()-1)*100))
	return t
}

// ---- §VI-A / D2: TAGE latency ----

// TageLatency compares a 2-cycle vs 3-cycle TAGE inside the TAGE-L topology
// (paper: no accuracy change, ~1% IPC cost) across the SPEC proxies.
func TageLatency(cfg Config) *stats.Table {
	cfg = cfg.Defaults()
	t := &stats.Table{
		Title:   "D2 — TAGE response latency 2 vs 3 cycles (paper: ~equal accuracy, ~1% IPC)",
		Headers: []string{"workload", "IPC@2", "IPC@3", "delta-IPC", "acc@2", "acc@3"},
	}
	d2 := design{"tage-l2", "LOOP3 > TAGE2 > BTB2 > BIM2 > UBTB1", compose.Options{GHistBits: 64}}
	d3 := designs()[2]
	var jobs []runner.Sim
	for _, w := range workloads.Names() {
		jobs = append(jobs, cfg.job(d2, w, uarch.DefaultConfig()), cfg.job(d3, w, uarch.DefaultConfig()))
	}
	res := cfg.runAll(jobs)
	var deltas []float64
	for i, w := range workloads.Names() {
		r2, r3 := res[2*i], res[2*i+1]
		delta := (r3.IPC()/r2.IPC() - 1) * 100
		deltas = append(deltas, delta)
		t.AddRow(w,
			fmt.Sprintf("%.3f", r2.IPC()), fmt.Sprintf("%.3f", r3.IPC()),
			fmt.Sprintf("%+.2f%%", delta),
			fmt.Sprintf("%.2f%%", r2.Accuracy()*100), fmt.Sprintf("%.2f%%", r3.Accuracy()*100))
	}
	sort.Float64s(deltas)
	t.AddRow("median", "", "", fmt.Sprintf("%+.2f%%", deltas[len(deltas)/2]), "", "")
	return t
}

// ---- §VI-B / D3: global history repair policy ----

// HistoryRepair compares GHR policies across the SPEC proxies and Dhrystone
// (paper: repair+replay gives +15% IPC and -25% mispredicts over
// repair-without-replay on SPEC, but -3% IPC on Dhrystone).
func HistoryRepair(cfg Config) *stats.Table {
	cfg = cfg.Defaults()
	t := &stats.Table{
		Title:   "D3 — global history repair policy (§VI-B)",
		Headers: []string{"workload", "IPC none", "IPC repair", "IPC replay", "misp none", "misp repair", "misp replay"},
	}
	pols := []compose.GHRPolicy{compose.GHRNoRepair, compose.GHRRepair, compose.GHRRepairReplay}
	names := append(workloads.Names(), "dhrystone")
	var jobs []runner.Sim
	for _, w := range names {
		for _, pol := range pols {
			d := designs()[2]
			d.opt.GHRPolicy = pol
			jobs = append(jobs, cfg.job(d, w, uarch.DefaultConfig()))
		}
	}
	res := cfg.runAll(jobs)
	var ipc [3][]float64
	var misp [3]uint64
	for wi, w := range names {
		var row [3]*stats.Sim
		for i := range pols {
			row[i] = res[wi*len(pols)+i]
			if w != "dhrystone" {
				ipc[i] = append(ipc[i], row[i].IPC())
				misp[i] += row[i].Mispredicts
			}
		}
		t.AddRow(w,
			fmt.Sprintf("%.3f", row[0].IPC()), fmt.Sprintf("%.3f", row[1].IPC()), fmt.Sprintf("%.3f", row[2].IPC()),
			fmt.Sprintf("%d", row[0].Mispredicts), fmt.Sprintf("%d", row[1].Mispredicts), fmt.Sprintf("%d", row[2].Mispredicts))
	}
	h0, _ := stats.HarmonicMean(ipc[0])
	h1, _ := stats.HarmonicMean(ipc[1])
	h2, _ := stats.HarmonicMean(ipc[2])
	t.AddRow("SPEC HARMEAN",
		fmt.Sprintf("%.3f", h0), fmt.Sprintf("%.3f", h1), fmt.Sprintf("%.3f", h2),
		fmt.Sprintf("%d", misp[0]), fmt.Sprintf("%d", misp[1]), fmt.Sprintf("%d", misp[2]))
	return t
}

// ---- §VI-C / D4: short-forwards-branch predication ----

// SFB compares the hammock-predication optimization on the CoreMark proxy
// (paper: 4.9 -> 6.1 CoreMarks/MHz, 97% -> 99.1% accuracy).
func SFB(cfg Config) *stats.Table {
	cfg = cfg.Defaults()
	t := &stats.Table{
		Title:   "D4 — short-forwards-branch predication on CoreMark (§VI-C)",
		Headers: []string{"SFB", "IPC (CoreMarks/MHz proxy)", "accuracy", "MPKI"},
	}
	base := uarch.DefaultConfig()
	sfbCfg := base
	sfbCfg.SFB = true
	res := cfg.runAll([]runner.Sim{
		cfg.job(designs()[2], "coremark", base),
		cfg.job(designs()[2], "coremark", sfbCfg),
	})
	off, on := res[0], res[1]
	t.AddRow("off", fmt.Sprintf("%.3f", off.IPC()),
		fmt.Sprintf("%.2f%%", off.Accuracy()*100), fmt.Sprintf("%.2f", off.MPKI()))
	t.AddRow("on", fmt.Sprintf("%.3f", on.IPC()),
		fmt.Sprintf("%.2f%%", on.Accuracy()*100), fmt.Sprintf("%.2f", on.MPKI()))
	return t
}

// ---- §II-B: trace-driven vs in-core accuracy ----

// TraceGap quantifies software-trace-simulator modelling error: the same
// composed predictor evaluated under idealized trace conditions vs inside
// the speculating core.
func TraceGap(cfg Config) *stats.Table {
	cfg = cfg.Defaults()
	// Both methodologies must start cold: the trace evaluator has no
	// warm-up notion, so the in-core run drops its warm-up slice too.
	cfg.Warmup = 0
	t := &stats.Table{
		Title:   "Trace-driven vs in-core accuracy for identical predictor RTL (§II-B)",
		Headers: []string{"design", "workload", "trace acc", "in-core acc", "gap"},
	}
	for _, d := range designs() {
		for _, w := range []string{"gcc", "leela"} {
			prog, err := workloads.Get(w)
			if err != nil {
				panic(err)
			}
			var buf bytes.Buffer
			if _, err := trace.Capture(&buf, prog, cfg.Seed, cfg.Insts); err != nil {
				panic(err)
			}
			tr, err := trace.NewReader(&buf)
			if err != nil {
				panic(err)
			}
			tres, err := trace.Simulate(pipeline(d), tr)
			if err != nil {
				panic(err)
			}
			cres := run(d, w, uarch.DefaultConfig(), cfg)
			t.AddRow(d.name, w,
				fmt.Sprintf("%.2f%%", tres.Accuracy()*100),
				fmt.Sprintf("%.2f%%", cres.Accuracy()*100),
				fmt.Sprintf("%+.2f pp", (tres.Accuracy()-cres.Accuracy())*100))
		}
	}
	return t
}

// ---- ablations ----

// AblationLoop measures the loop predictor's contribution to TAGE-L.
func AblationLoop(cfg Config) *stats.Table {
	cfg = cfg.Defaults()
	t := &stats.Table{
		Title:   "Ablation — TAGE-L with and without the loop corrector",
		Headers: []string{"workload", "MPKI with", "MPKI without", "IPC with", "IPC without"},
	}
	with := designs()[2]
	without := design{"tage-noloop", "TAGE3 > BTB2 > BIM2 > UBTB1", compose.Options{GHistBits: 64}}
	ws := []string{"x264", "exchange2", "xz", "coremark"}
	var jobs []runner.Sim
	for _, w := range ws {
		jobs = append(jobs, cfg.job(with, w, uarch.DefaultConfig()), cfg.job(without, w, uarch.DefaultConfig()))
	}
	res := cfg.runAll(jobs)
	for i, w := range ws {
		a, b := res[2*i], res[2*i+1]
		t.AddRow(w,
			fmt.Sprintf("%.2f", a.MPKI()), fmt.Sprintf("%.2f", b.MPKI()),
			fmt.Sprintf("%.3f", a.IPC()), fmt.Sprintf("%.3f", b.IPC()))
	}
	return t
}

// AblationUBTB measures the single-cycle uBTB's redirect-bubble savings.
func AblationUBTB(cfg Config) *stats.Table {
	cfg = cfg.Defaults()
	t := &stats.Table{
		Title:   "Ablation — TAGE-L with and without the single-cycle uBTB",
		Headers: []string{"workload", "bubbles with", "bubbles without", "IPC with", "IPC without"},
	}
	with := designs()[2]
	without := design{"tage-noubtb", "LOOP3 > TAGE3 > BTB2 > BIM2", compose.Options{GHistBits: 64}}
	ws := []string{"dhrystone", "gcc", "xalancbmk"}
	var jobs []runner.Sim
	for _, w := range ws {
		jobs = append(jobs, cfg.job(with, w, uarch.DefaultConfig()), cfg.job(without, w, uarch.DefaultConfig()))
	}
	res := cfg.runAll(jobs)
	for i, w := range ws {
		a, b := res[2*i], res[2*i+1]
		t.AddRow(w,
			fmt.Sprintf("%.1f%%", a.BubbleFrac()*100), fmt.Sprintf("%.1f%%", b.BubbleFrac()*100),
			fmt.Sprintf("%.3f", a.IPC()), fmt.Sprintf("%.3f", b.IPC()))
	}
	return t
}

// Shootout races every direction-predictor component in the library as the
// top of a common "X > BTB2 > BIM2" topology — the quick design-space sweep
// COBRA's reuse story enables (one line of topology per candidate).
func Shootout(cfg Config) *stats.Table {
	cfg = cfg.Defaults()
	t := &stats.Table{
		Title:   "Library shootout — every direction component over BTB2 > BIM2",
		Headers: []string{"component", "gcc MPKI", "gcc IPC", "leela MPKI", "leela IPC", "storage KB"},
	}
	comps := []string{
		"GBIM3", "GSEL3", "PBIM3", "GSKEW3", "YAGS3", "GTAG3", "PERC3", "GEHL3", "TAGE3",
	}
	var jobs []runner.Sim
	for _, comp := range comps {
		d := design{comp, comp + " > BTB2 > BIM2", compose.Options{GHistBits: 64}}
		jobs = append(jobs, cfg.job(d, "gcc", uarch.DefaultConfig()), cfg.job(d, "leela", uarch.DefaultConfig()))
	}
	res := cfg.runAll(jobs)
	for i, comp := range comps {
		d := design{comp, comp + " > BTB2 > BIM2", compose.Options{GHistBits: 64}}
		p := pipeline(d)
		bits := 0
		for _, b := range p.ComponentBudgets() {
			bits += b.TotalBits()
		}
		g, l := res[2*i], res[2*i+1]
		t.AddRow(comp,
			fmt.Sprintf("%.2f", g.MPKI()), fmt.Sprintf("%.3f", g.IPC()),
			fmt.Sprintf("%.2f", l.MPKI()), fmt.Sprintf("%.3f", l.IPC()),
			fmt.Sprintf("%.1f", float64(bits)/8/1024))
	}
	return t
}

// AblationWidth compares the default 4x4-byte fetch geometry against the
// paper's 8x2-byte RVC geometry (§III-C: superscalar prediction matters as
// fetch units widen) with the TAGE-L design on identical program structure.
func AblationWidth(cfg Config) *stats.Table {
	cfg = cfg.Defaults()
	t := &stats.Table{
		Title:   "Ablation — fetch geometry: 4x4B vs 8x2B packets (§III-C)",
		Headers: []string{"workload", "IPC 4-wide", "IPC 8-wide", "delta", "MPKI 4-wide", "MPKI 8-wide"},
	}
	job := func(w string, fetch pred.Config, instBytes int) runner.Sim {
		prof, ok := workloads.GetProfile(w)
		if !ok {
			panic("unknown profile " + w)
		}
		core := uarch.DefaultConfig()
		core.Fetch = fetch
		return runner.Sim{
			Topology: "LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1",
			Opt:      compose.Options{GHistBits: 64},
			Prog:     workloads.BuildWithGeometry(prof, instBytes),
			Core:     core, Insts: cfg.Insts, Warmup: cfg.Warmup,
		}
	}
	ws := []string{"gcc", "x264", "exchange2"}
	var jobs []runner.Sim
	for _, w := range ws {
		jobs = append(jobs,
			job(w, pred.Config{FetchWidth: 4, InstBytes: 4}, 4),
			job(w, pred.Config{FetchWidth: 8, InstBytes: 2}, 2))
	}
	res := cfg.runAll(jobs)
	for i, w := range ws {
		n, wide := res[2*i], res[2*i+1]
		t.AddRow(w,
			fmt.Sprintf("%.3f", n.IPC()), fmt.Sprintf("%.3f", wide.IPC()),
			fmt.Sprintf("%+.1f%%", (wide.IPC()/n.IPC()-1)*100),
			fmt.Sprintf("%.2f", n.MPKI()), fmt.Sprintf("%.2f", wide.MPKI()))
	}
	return t
}

// AblationMetadata reports the port/area consequence of the §III-D metadata
// design: with metadata, predictor memories are 1R1W; without, update-time
// re-reads force a second read port.
func AblationMetadata() *stats.Table {
	t := &stats.Table{
		Title:   "Ablation — metadata round-trip vs update-time re-read (§III-D)",
		Headers: []string{"design", "area 1R1W (meta)", "area 2R1W (re-read)", "overhead"},
	}
	for _, d := range designs() {
		p := pipeline(d)
		var with, without float64
		for _, b := range p.ComponentBudgets() {
			with += area.OfBudget(b)
			b2 := b
			b2.Mems = nil
			for _, m := range b.Mems {
				m.ReadPorts++ // the extra update-time read port
				b2.Mems = append(b2.Mems, m)
			}
			without += area.OfBudget(b2)
		}
		t.AddRow(d.name,
			fmt.Sprintf("%.1f kU", with/1000), fmt.Sprintf("%.1f kU", without/1000),
			fmt.Sprintf("%+.1f%%", (without/with-1)*100))
	}
	return t
}

// Energy reports per-design predictor SRAM access energy per kilo-
// instruction — the §VI-A future-work concern, measurable here because
// every table is an access-counted memory model.
func Energy(cfg Config) *stats.Table {
	cfg = cfg.Defaults()
	t := &stats.Table{
		Title:   "Predictor SRAM access energy (model units per kilo-instruction)",
		Headers: []string{"design", "workload", "eU/kinst", "top consumer"},
	}
	type point struct {
		d design
		w string
	}
	var grid []point
	var jobs []runner.Sim
	for _, d := range designs() {
		for _, w := range []string{"gcc", "x264"} {
			grid = append(grid, point{d, w})
			jobs = append(jobs, cfg.job(d, w, uarch.DefaultConfig()))
		}
	}
	full, err := runner.RunFull(jobs, cfg.runnerOptions())
	if err != nil {
		panic("experiments: " + err.Error())
	}
	for i, r := range full {
		checkParanoid(jobs[i].Topology, jobs[i].Workload, r.Pipeline)
		rep := area.Energy(r.Pipeline)
		top := ""
		best := -1.0
		for _, it := range rep.Items {
			if it.Units > best {
				best, top = it.Units, it.Name
			}
		}
		t.AddRow(grid[i].d.name, grid[i].w,
			fmt.Sprintf("%.0f", rep.PerKiloInst(r.Sim.Instructions)), top)
	}
	return t
}

// ---- H2P summary ----

// H2P profiles the Table I designs on the branchy SPECint proxies and
// summarizes how concentrated each design's mispredictions are in a handful
// of static branches — the "hard-to-predict branch" phenomenon: a small set
// of static H2Ps dominates MPKI, so per-PC attribution tells a composer
// where a topology change would actually pay off.
func H2P(cfg Config) *stats.Table {
	cfg = cfg.Defaults()
	t := &stats.Table{
		Title: "H2P summary — misprediction concentration per design (committed CFIs)",
		Headers: []string{"design", "workload", "pcs", "mispredicts",
			"top-1", "top-5", "top-10", "hardest pc", "wrong provider"},
	}
	type point struct {
		d design
		w string
	}
	var grid []point
	var jobs []runner.Sim
	for _, d := range designs() {
		for _, w := range []string{"gcc", "leela"} {
			grid = append(grid, point{d, w})
			j := cfg.job(d, w, uarch.DefaultConfig())
			j.Attribution = true
			jobs = append(jobs, j)
		}
	}
	full, err := runner.RunFull(jobs, cfg.runnerOptions())
	if err != nil {
		panic("experiments: " + err.Error())
	}
	for i, r := range full {
		checkParanoid(jobs[i].Topology, jobs[i].Workload, r.Pipeline)
		prof := r.Profile
		if got, want := prof.TotalMispredicts(), r.Sim.Mispredicts; got != want {
			panic(fmt.Sprintf("experiments: h2p attribution drift (%s on %s): profile %d != counter %d",
				grid[i].d.name, grid[i].w, got, want))
		}
		hardest, wrong := "-", "-"
		if top := prof.Top(1); len(top) > 0 && top[0].Misp > 0 {
			hardest = fmt.Sprintf("0x%x (%s)", top[0].PC, top[0].Kind)
			if len(top[0].WrongBy) > 0 {
				ks := stats.SortedKeys(top[0].WrongBy)
				best := ks[0]
				for _, k := range ks {
					if top[0].WrongBy[k] > top[0].WrongBy[best] {
						best = k
					}
				}
				wrong = best
			}
		}
		t.AddRow(grid[i].d.name, grid[i].w,
			fmt.Sprintf("%d", prof.PCs()),
			fmt.Sprintf("%d", prof.TotalMispredicts()),
			fmt.Sprintf("%.1f%%", prof.ShareTop(1)*100),
			fmt.Sprintf("%.1f%%", prof.ShareTop(5)*100),
			fmt.Sprintf("%.1f%%", prof.ShareTop(10)*100),
			hardest, wrong)
	}
	return t
}
