package experiments

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"cobra/internal/backend"
	"cobra/internal/client"
	"cobra/internal/runner"
	"cobra/internal/serve"
	"cobra/internal/uarch"
	"cobra/internal/workloads"
)

// TestRemoteMatchesLocal: a grid executed through a remote Backend — specs
// submitted to an in-process cobra-serve daemon — renders the exact same
// table as the in-process runner, because each grid point carries the same
// derived seed either way.  This is the tentpole equivalence behind
// `cobra-experiments -server`.
func TestRemoteMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation grid twice")
	}
	srv, err := serve.New(serve.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck
	}()
	be, err := backend.NewRemote(client.Config{BaseURL: ts.URL, Poll: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	local := Config{Insts: 30_000, Seed: 42, Parallelism: 4}
	remote := local
	remote.Backend = be
	want := TageLatency(local).String()
	got := TageLatency(remote).String()
	if got != want {
		t.Errorf("remote table differs from local:\n--- local ---\n%s--- remote ---\n%s", want, got)
	}

	// The same grid through a backend.Local must also match: the Backend
	// seam itself introduces no byte-level drift.
	viaLocal := local
	viaLocal.Backend = &backend.Local{}
	if g := TageLatency(viaLocal).String(); g != want {
		t.Errorf("local-backend table differs from fast path:\n--- fast ---\n%s--- backend ---\n%s", want, g)
	}

	// A grid with pre-built programs is not remotable and must fall back to
	// the local path transparently (same bytes trivially, but it must not
	// panic or try to submit).
	if w, g := AblationWidth(local).String(), AblationWidth(remote).String(); g != w {
		t.Errorf("non-remotable fallback differs:\n--- local ---\n%s--- fallback ---\n%s", w, g)
	}
}

// TestRemotableDetection: jobs carrying a pre-built Prog flag the grid as
// not remotable; plain workload-referencing jobs are.
func TestRemotableDetection(t *testing.T) {
	cfg := Config{Insts: 1000, Seed: 1}.Defaults()
	plain := cfg.job(designs()[1], "fib", uarch.DefaultConfig())
	if !remotable([]runner.Sim{plain}) {
		t.Error("plain workload job reported non-remotable")
	}
	prog, err := workloads.Get("fib")
	if err != nil {
		t.Fatal(err)
	}
	custom := plain
	custom.Prog = prog
	if remotable([]runner.Sim{plain, custom}) {
		t.Error("grid with a pre-built program reported remotable")
	}
}
