package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/golden files")

// golden compares got against testdata/golden/<name>, or rewrites the file
// when -update is set.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test ./internal/experiments -run TestGolden -update)", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden output\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// The static tables render from configuration alone — any drift is a real
// behaviour change, not simulation noise.
func TestGoldenTableI(t *testing.T)   { golden(t, "table1.txt", TableI().String()) }
func TestGoldenTableII(t *testing.T)  { golden(t, "table2.txt", TableII().String()) }
func TestGoldenTableIII(t *testing.T) { golden(t, "table3.txt", TableIII().String()) }

// TestGoldenFig10 pins a small-config Fig. 10 run.  The golden file encodes
// both the simulator's numeric behaviour and the determinism contract: the
// same bytes must come back for any Parallelism (the equivalence test covers
// that axis explicitly).
func TestGoldenFig10(t *testing.T) {
	if testing.Short() {
		t.Skip("50 simulations")
	}
	_, table := Fig10(Config{Insts: 15_000, Seed: 42, Parallelism: 2})
	golden(t, "fig10_small.txt", table.String())
}

// TestGoldenFig10Paranoid reruns the pinned Fig. 10 configuration with the
// invariant checker armed and compares against the SAME golden file: paranoid
// mode is observation-only, so the bytes must not move.
func TestGoldenFig10Paranoid(t *testing.T) {
	if testing.Short() {
		t.Skip("50 simulations")
	}
	_, table := Fig10(Config{Insts: 15_000, Seed: 42, Parallelism: 2, Paranoid: true})
	golden(t, "fig10_small.txt", table.String())
}
