package experiments

import (
	"runtime"
	"testing"
)

// TestParallelismEquivalence is the end-to-end determinism guarantee: the
// rendered experiment tables — not just raw counters — must be byte-identical
// whether the batch runs serially, on 4 workers, or on every core.  Fig. 10
// (the full workload × system grid) and the predictor shootout together cover
// every job-construction path the experiments use.
func TestParallelismEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("hundreds of simulations")
	}
	levels := []int{1, 4, runtime.GOMAXPROCS(0)}

	render := map[string]func(Config) string{
		"fig10": func(cfg Config) string {
			_, table := Fig10(cfg)
			return table.String()
		},
		"shootout": func(cfg Config) string {
			return Shootout(cfg).String()
		},
	}

	for name, fn := range render {
		t.Run(name, func(t *testing.T) {
			var base string
			for i, j := range levels {
				got := fn(Config{Insts: 50_000, Seed: 42, Parallelism: j})
				if i == 0 {
					base = got
					continue
				}
				if got != base {
					t.Errorf("-j %d output differs from -j %d\n--- j=%d ---\n%s--- j=%d ---\n%s",
						j, levels[0], levels[0], base, j, got)
				}
			}
		})
	}
}
