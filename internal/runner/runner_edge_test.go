package runner

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"cobra/internal/compose"
	"cobra/internal/pred"
	"cobra/internal/uarch"
)

// bomb wraps a real component and panics after a number of predictions —
// modelling a buggy third-party component detonating mid-simulation.
type bomb struct {
	pred.Subcomponent
	n int
}

func (b *bomb) Predict(q *pred.Query) pred.Response {
	b.n++
	if b.n > 100 {
		panic("bomb: injected component failure")
	}
	return b.Subcomponent.Predict(q)
}

// bombOpt arms the BIM2 instance of a pipeline with a bomb.
func bombOpt() compose.Options {
	return compose.Options{GHistBits: 32, Wrap: func(c pred.Subcomponent) pred.Subcomponent {
		if c.Name() == "BIM2" {
			return &bomb{Subcomponent: c}
		}
		return c
	}}
}

func TestRunEmptyBatch(t *testing.T) {
	res, err := Run(nil, Options{Workers: 4})
	if err != nil || len(res) != 0 {
		t.Fatalf("empty batch: res=%v err=%v", res, err)
	}
}

func TestWorkersExceedJobs(t *testing.T) {
	jobs := testJobs(5_000)[:2]
	res, err := Run(jobs, Options{Workers: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res {
		if s == nil || s.Instructions < 5_000 {
			t.Fatalf("job %d incomplete: %+v", i, s)
		}
	}
}

// TestPanicIsolatedCollectAll: a panicking job becomes a JobError carrying
// the panic value and stack while every other job still returns its result.
func TestPanicIsolatedCollectAll(t *testing.T) {
	core := uarch.DefaultConfig()
	ok := Sim{Topology: "GBIM3 > BTB2 > BIM2", Opt: compose.Options{GHistBits: 32},
		Workload: "gcc", Core: core, Insts: 10_000}
	bad := ok
	bad.Opt = bombOpt()
	res, err := Run([]Sim{ok, bad, ok}, Options{Workers: 2, Seed: 1, Policy: CollectAll})
	var batch *BatchError
	if !errors.As(err, &batch) {
		t.Fatalf("want *BatchError, got %v", err)
	}
	if len(batch.Errs) != 1 || batch.Errs[0].Index != 1 || batch.Total != 3 {
		t.Fatalf("unexpected batch error shape: %v", batch)
	}
	var pe *PanicError
	if !errors.As(batch.Errs[0], &pe) {
		t.Fatalf("job error does not wrap *PanicError: %v", batch.Errs[0])
	}
	if !strings.Contains(pe.Error(), "bomb:") || !strings.Contains(string(pe.Stack), "Predict") {
		t.Errorf("panic error lost value or stack: %v", pe)
	}
	if !strings.Contains(batch.Errs[0].Error(), "job 1") {
		t.Errorf("job error does not identify the job: %v", batch.Errs[0])
	}
	for _, i := range []int{0, 2} {
		if res[i] == nil || res[i].Instructions < 10_000 {
			t.Errorf("healthy job %d lost its result: %+v", i, res[i])
		}
	}
	if res[1] != nil {
		t.Error("failed job left a non-nil result")
	}
}

// TestPanicFailFast: under the default policy the recovered panic is the
// root-cause error, never a cancellation cascade.
func TestPanicFailFast(t *testing.T) {
	core := uarch.DefaultConfig()
	ok := Sim{Topology: "GBIM3 > BTB2 > BIM2", Opt: compose.Options{GHistBits: 32},
		Workload: "gcc", Core: core, Insts: 200_000}
	bad := ok
	bad.Opt = bombOpt()
	bad.Insts = 10_000
	res, err := Run([]Sim{ok, bad, ok, ok}, Options{Workers: 2, Seed: 1})
	if res != nil {
		t.Error("fail-fast batch returned partial results")
	}
	var je *JobError
	if !errors.As(err, &je) || je.Index != 1 {
		t.Fatalf("want job 1's *JobError, got %v", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("root cause reported as cancellation cascade: %v", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("fail-fast error does not wrap the panic: %v", err)
	}
}

// TestCancelMidBatch: cancelling the batch context aborts in-flight jobs
// cooperatively and the batch reports the cancellation.
func TestCancelMidBatch(t *testing.T) {
	core := uarch.DefaultConfig()
	jobs := make([]Sim, 4)
	for i := range jobs {
		jobs[i] = Sim{Topology: "GBIM3 > BTB2 > BIM2", Opt: compose.Options{GHistBits: 32},
			Workload: "gcc", Core: core, Insts: 500_000_000}
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := Run(jobs, Options{Workers: 2, Seed: 1, Ctx: ctx})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v (res=%v)", err, res != nil)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation not cooperative: batch ran %v", elapsed)
	}
}

// TestTimeoutWhileOthersComplete: a per-job timeout kills only the
// overrunning job; the rest of the batch completes and keeps its results.
func TestTimeoutWhileOthersComplete(t *testing.T) {
	core := uarch.DefaultConfig()
	small := Sim{Topology: "GBIM3 > BTB2 > BIM2", Opt: compose.Options{GHistBits: 32},
		Workload: "gcc", Core: core, Insts: 10_000}
	huge := small
	huge.Insts = 2_000_000_000
	jobs := []Sim{huge, small, small, small}
	res, err := Run(jobs, Options{Workers: 2, Seed: 1, Policy: CollectAll,
		Timeout: 2 * time.Second})
	var batch *BatchError
	if !errors.As(err, &batch) {
		t.Fatalf("want *BatchError, got %v", err)
	}
	if len(batch.Errs) != 1 || batch.Errs[0].Index != 0 {
		t.Fatalf("unexpected failures: %v", batch)
	}
	if !errors.Is(batch.Errs[0], context.DeadlineExceeded) {
		t.Fatalf("overrunning job error %v, want deadline exceeded", batch.Errs[0])
	}
	for i := 1; i < len(jobs); i++ {
		if res[i] == nil || res[i].Instructions < 10_000 {
			t.Errorf("job %d within budget lost its result: %+v", i, res[i])
		}
	}
}
