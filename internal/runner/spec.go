package runner

import (
	"context"
	"runtime/debug"
	"time"

	"cobra/internal/interval"
	"cobra/internal/obs"
	"cobra/internal/spec"
)

// SpecResult pairs one spec's execution outcome with runner bookkeeping.
type SpecResult struct {
	// Spec is the canonical form that actually ran (defaults explicit,
	// workload hash pinned) — the form whose Digest keys result caches.
	Spec *spec.RunSpec
	// Outcome carries the counters, pipeline handle, captured events, and
	// attribution profile.
	Outcome *spec.Outcome
	// Wall is the job's wall-clock run time (telemetry only).
	Wall time.Duration
}

// FromSim converts a batch job into the canonical spec it describes, for
// callers that assemble jobs programmatically but want spec digests (cache
// keys, provenance records).  Jobs with a pre-built Prog have no workload
// reference and are not convertible.
func FromSim(j Sim, seed uint64) (*spec.RunSpec, error) {
	s := &spec.RunSpec{
		Topology: j.Topology,
		Pipeline: spec.FromOptions(j.Opt),
		Workload: j.Workload,
		Seed:     seed,
		Insts:    j.Insts,
		Warmup:   j.Warmup,
		Core:     &j.Core,
		Paranoid: j.Opt.Paranoid,
		Observe:  spec.Observe{Attribution: j.Attribution},
	}
	if err := s.Canonicalize(); err != nil {
		return nil, err
	}
	return s, nil
}

// RunSpecs executes the canonical run each spec describes, fanned out across
// opt.Workers with the same deterministic merge, panic containment, metrics
// accounting, and failure policies as RunFull.  Unlike RunFull — whose jobs
// derive per-index seeds from opt.Seed — every spec runs with its *own* seed,
// so each result is bit-identical to a direct cobra-sim/cobra.Run of the
// same spec; opt.Seed is ignored.  Specs are not mutated: each job runs its
// canonical copy, returned in SpecResult.Spec.
func RunSpecs(specs []*spec.RunSpec, opt Options) ([]SpecResult, error) {
	return batch(len(specs), opt,
		func(i int) (string, string) { return specs[i].Topology, "workload " + specs[i].Workload },
		func(ctx context.Context, i int, met *obs.Metrics) (SpecResult, error) {
			var span *obs.ActiveSpan
			if opt.SpanFor != nil {
				if parent := opt.SpanFor(i); parent != nil {
					span = parent.Child("exec", "run")
					span.SetAttr("topology", specs[i].Topology)
					span.SetAttr("workload", specs[i].Workload)
				}
			}
			var prog *obs.RunProgress
			if opt.ProgressFor != nil {
				prog = opt.ProgressFor(i)
			}
			var ivl *interval.Recorder
			if opt.IntervalsFor != nil {
				ivl = opt.IntervalsFor(i)
			}
			begin := time.Now()
			res, err := safeExec(ctx, specs[i], met, span, prog, ivl)
			res.Wall = time.Since(begin)
			var insts uint64
			if res.Outcome != nil && res.Outcome.Stats != nil {
				insts = res.Outcome.Stats.Instructions
				// Surface silent event-ring overflow on /metrics.
				met.AddEventDrops(res.Outcome.EventsTotal - uint64(len(res.Outcome.Events)))
			}
			met.ObserveJob(res.Wall, insts)
			if err != nil {
				span.SetAttr("error", err.Error())
			}
			span.End()
			return res, err
		})
}

// safeExec is spec.Exec behind the runner's recover boundary: a panicking
// job becomes a *PanicError instead of killing the process.
func safeExec(ctx context.Context, s *spec.RunSpec, met *obs.Metrics, span *obs.ActiveSpan, prog *obs.RunProgress, ivl *interval.Recorder) (res SpecResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	if err := ctx.Err(); err != nil {
		return SpecResult{}, err // batch already cancelled; don't start
	}
	c, err := s.Canonical()
	if err != nil {
		return SpecResult{}, err
	}
	out, err := spec.Exec(c, spec.Attach{Ctx: ctx, Metrics: met, Span: span, Progress: prog, Intervals: ivl})
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			err = cerr // report the cancellation, not its downstream wrapping
		}
		return SpecResult{}, err
	}
	return SpecResult{Spec: c, Outcome: out}, nil
}
