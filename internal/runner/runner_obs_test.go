package runner

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"cobra/internal/obs"
)

// TestSharedTracerParallelBatch attaches ONE tracer to every pipeline of a
// parallel batch; under -race this proves the Tracer (and every emit site
// feeding it) is safe when jobs run concurrently.
func TestSharedTracerParallelBatch(t *testing.T) {
	tr := obs.NewTracer(1 << 12)
	jobs := testJobs(5_000)
	for i := range jobs {
		jobs[i].Opt.Observer = tr
	}
	if _, err := Run(jobs, Options{Workers: 4, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	if tr.Total() == 0 {
		t.Fatal("shared tracer observed no events")
	}
	for _, ev := range tr.Events() {
		if ev.Kind.String() == "invalid" {
			t.Fatalf("invalid event kind %d in shared tracer", ev.Kind)
		}
	}
}

// TestObserverDoesNotChangeResults is the zero-cost contract at batch level:
// attaching an observer, metrics, and attribution must leave every counter
// bit-identical.
func TestObserverDoesNotChangeResults(t *testing.T) {
	jobs := testJobs(10_000)
	plain, err := Run(jobs, Options{Workers: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	observed := testJobs(10_000)
	tr := obs.NewTracer(256)
	for i := range observed {
		observed[i].Opt.Observer = tr
		observed[i].Attribution = true
	}
	full, err := RunFull(observed, Options{Workers: 2, Seed: 42, Metrics: obs.NewMetrics()})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if fp(plain[i]) != fp(full[i].Sim) {
			t.Fatalf("job %d diverged under observation: plain %+v observed %+v",
				i, fp(plain[i]), fp(full[i].Sim))
		}
	}
}

// TestAttributionMatchesCounters checks the H2P acceptance invariant on every
// job of a batch: the per-PC mispredict sum equals the Sim counter, and the
// exec sum equals the committed control-flow total.
func TestAttributionMatchesCounters(t *testing.T) {
	jobs := testJobs(10_000)
	for i := range jobs {
		jobs[i].Attribution = true
	}
	full, err := RunFull(jobs, Options{Workers: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range full {
		if r.Profile == nil {
			t.Fatalf("job %d: Attribution set but no profile", i)
		}
		if got, want := r.Profile.TotalMispredicts(), r.Sim.Mispredicts; got != want {
			t.Errorf("job %d: profile mispredicts %d != counter %d", i, got, want)
		}
		cfis := r.Sim.Branches + r.Sim.Jumps + r.Sim.IndirectJumps
		if got := r.Profile.TotalExecs(); got != cfis {
			t.Errorf("job %d: profile execs %d != committed CFIs %d", i, got, cfis)
		}
		if r.Wall <= 0 {
			t.Errorf("job %d: wall-clock not recorded", i)
		}
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for the progress writer.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestProgressReporting drives the periodic progress line with a tiny period
// and checks the heartbeat contains the job totals.
func TestProgressReporting(t *testing.T) {
	var buf syncBuffer
	jobs := testJobs(20_000)
	if _, err := Run(jobs, Options{
		Workers: 2, Seed: 42, Progress: &buf, ProgressEvery: time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "jobs done") {
		t.Fatalf("no progress heartbeat written; got %q", out)
	}
}

// TestMetricsAccounting checks the runner's job accounting against a batch
// with one deliberately failing job.
func TestMetricsAccounting(t *testing.T) {
	jobs := testJobs(5_000)
	jobs = append(jobs, Sim{Topology: "NOPE9", Workload: "dhrystone",
		Core: jobs[0].Core, Insts: 1})
	met := obs.NewMetrics()
	_, err := Run(jobs, Options{Workers: 2, Seed: 42, Policy: CollectAll, Metrics: met})
	if err == nil {
		t.Fatal("expected a batch error from the poisoned job")
	}
	s := met.Snap()
	if s.JobsTotal != uint64(len(jobs)) || s.JobsDone != uint64(len(jobs)) || s.JobsFailed != 1 {
		t.Fatalf("accounting: %+v", s)
	}
	if s.Cycles == 0 || s.Instructions == 0 {
		t.Fatalf("no simulated work recorded: %+v", s)
	}
}
