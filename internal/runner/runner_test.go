package runner

import (
	"runtime"
	"testing"

	"cobra/internal/compose"
	"cobra/internal/stats"
	"cobra/internal/uarch"
	"cobra/internal/workloads"
)

func testJobs(insts uint64) []Sim {
	core := uarch.DefaultConfig()
	jobs := []Sim{}
	for _, topo := range []string{"GBIM3 > BTB2 > BIM2", "GTAG3 > BTB2 > BIM2"} {
		for _, w := range []string{"dhrystone", "gcc", "sort"} {
			jobs = append(jobs, Sim{
				Topology: topo,
				Opt:      compose.Options{GHistBits: 32},
				Workload: w,
				Core:     core,
				Insts:    insts,
			})
		}
	}
	return jobs
}

// fingerprint reduces a result to the fields the experiment tables render.
type fingerprint struct {
	cycles, insts, misp, bubbles uint64
}

func fp(s *stats.Sim) fingerprint {
	return fingerprint{s.Cycles, s.Instructions, s.Mispredicts, s.FetchBubbles}
}

// TestWorkerCountInvariance is the determinism contract: the same batch run
// with 1, 3, and GOMAXPROCS workers produces identical counters per job.
func TestWorkerCountInvariance(t *testing.T) {
	jobs := testJobs(20_000)
	serial, err := Run(jobs, Options{Workers: 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{3, runtime.GOMAXPROCS(0), 0} {
		par, err := Run(jobs, Options{Workers: workers, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		for i := range jobs {
			if fp(serial[i]) != fp(par[i]) {
				t.Fatalf("workers=%d job %d diverged: serial %+v parallel %+v",
					workers, i, fp(serial[i]), fp(par[i]))
			}
		}
	}
}

// TestSeedDerivationPerIndex: two jobs identical except for position must
// see different seeds (independent dynamics), and the same position must
// reproduce exactly.
func TestSeedDerivationPerIndex(t *testing.T) {
	core := uarch.DefaultConfig()
	j := Sim{Topology: "BIM2", Workload: "gcc", Core: core, Insts: 20_000}
	res, err := Run([]Sim{j, j}, Options{Workers: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if fp(res[0]) == fp(res[1]) {
		t.Error("jobs at different indices ran with the same dynamics (seed not derived per index)")
	}
	again, err := Run([]Sim{j, j}, Options{Workers: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if fp(res[i]) != fp(again[i]) {
			t.Errorf("job %d not reproducible across runs", i)
		}
	}
}

func TestDerive(t *testing.T) {
	seen := map[uint64]bool{}
	for base := uint64(0); base < 4; base++ {
		for i := uint64(0); i < 1000; i++ {
			s := Derive(base, i)
			if s == 0 {
				t.Fatal("Derive produced the reserved zero seed")
			}
			if seen[s] {
				t.Fatalf("Derive collision at base=%d i=%d", base, i)
			}
			seen[s] = true
		}
	}
	if Derive(42, 7) != Derive(42, 7) {
		t.Error("Derive not deterministic")
	}
}

func TestMapOrderAndCoverage(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		got := Map(workers, 100, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
	if n := len(Map(4, 0, func(i int) int { return i })); n != 0 {
		t.Errorf("empty map returned %d results", n)
	}
}

func TestRunErrors(t *testing.T) {
	core := uarch.DefaultConfig()
	if _, err := Run([]Sim{{Topology: "NOPE9", Workload: "gcc", Core: core, Insts: 100}},
		Options{Workers: 2}); err == nil {
		t.Error("unknown component must error")
	}
	if _, err := Run([]Sim{{Topology: "BIM2", Workload: "nonesuch", Core: core, Insts: 100}},
		Options{Workers: 2}); err == nil {
		t.Error("unknown workload must error")
	}
	if _, err := Run([]Sim{{Topology: "] bad [", Workload: "gcc", Core: core, Insts: 100}},
		Options{Workers: 2}); err == nil {
		t.Error("malformed topology must error")
	}
	prog, err := workloads.Get("sort")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run([]Sim{{Topology: "BIM2", Prog: prog, Core: core, Insts: 100}},
		Options{Workers: 1}); err == nil {
		t.Error("shared single-use program must be rejected")
	}
}

// TestSharedCachedProgramConcurrently runs many jobs over the same cached
// workload instance at high worker counts — the scenario the race detector
// watches (run with -race in CI).
func TestSharedCachedProgramConcurrently(t *testing.T) {
	prog, err := workloads.Get("gcc")
	if err != nil {
		t.Fatal(err)
	}
	core := uarch.DefaultConfig()
	jobs := make([]Sim, 8)
	for i := range jobs {
		jobs[i] = Sim{Topology: "GBIM3 > BTB2 > BIM2", Opt: compose.Options{GHistBits: 32},
			Prog: prog, Core: core, Insts: 10_000}
	}
	res, err := Run(jobs, Options{Workers: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Instructions < 10_000 {
			t.Errorf("job %d committed %d insts", i, res[i].Instructions)
		}
	}
}
