// Package runner is the parallel experiment engine: it fans a batch of
// independent full-core simulations (design × workload × core config) out
// across worker goroutines and merges the results back in deterministic
// submission order.
//
// Determinism is the contract, not a best effort.  Three properties make a
// batch's output bit-identical regardless of worker count:
//
//  1. every job gets its own compose.Pipeline and uarch.Core — no predictor
//     or core state is shared between jobs;
//  2. job i's seed is Derive(base, i), a splitmix64 stream indexed by
//     submission position, so a job's dynamics depend only on its position
//     in the batch, never on which worker ran it or when;
//  3. results land in out[i] for job i — workers race only over disjoint
//     slots, and the merged slice reads in submission order.
//
// Shared inputs are safe by construction: synthetic programs are immutable
// after build (per-execution behaviour state lives in each oracle's State
// slots) and the workloads cache hands every job the same instance, while
// single-use interpreted-ISA programs are compiled fresh per job.
package runner

import (
	"fmt"
	"runtime"
	"sync"

	"cobra/internal/compose"
	"cobra/internal/program"
	"cobra/internal/stats"
	"cobra/internal/uarch"
	"cobra/internal/workloads"
)

// Derive returns the seed for the job at a submission index: the index-th
// output of a splitmix64 stream started at base.  Distinct indices give
// statistically independent seeds even for adjacent bases, and the result
// never collides with the "use the default" zero seed.
func Derive(base, index uint64) uint64 {
	x := base + (index+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 0x9E3779B97F4A7C15
	}
	return x
}

// Map runs fn(0) … fn(n-1) on up to workers goroutines and returns the
// results indexed by argument — the deterministic-merge primitive under
// Run, exported for experiments whose jobs need more than a Sim describes
// (post-run pipeline inspection, custom program construction).  workers <= 0
// means runtime.GOMAXPROCS(0); workers == 1 runs everything inline on the
// calling goroutine (the serial path).
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// Sim describes one independent full-core simulation.
type Sim struct {
	Topology string          // predictor topology (parsed per job)
	Opt      compose.Options // management-structure options
	Workload string          // resolved via workloads.Get when Prog is nil

	// Prog, when non-nil, overrides Workload with a pre-built program (e.g.
	// a non-default fetch geometry).  A shared instance must not be
	// SingleUse.
	Prog *program.Program

	Core   uarch.Config
	Insts  uint64 // measured instructions
	Warmup uint64 // instructions discarded before measurement
}

// Options configures a batch run.
type Options struct {
	// Workers caps the worker goroutines: <= 0 means GOMAXPROCS, 1 forces
	// the serial in-line path.  The choice never changes results.
	Workers int
	// Seed is the base seed; job i runs with Derive(Seed, i).
	Seed uint64
}

// Result pairs one job's counters with the pipeline that produced them, for
// post-run area/energy attribution.
type Result struct {
	Sim      *stats.Sim
	Pipeline *compose.Pipeline
}

// run executes one job with an already-derived seed.
func (j Sim) run(seed uint64) (Result, error) {
	topo, err := compose.ParseTopology(j.Topology)
	if err != nil {
		return Result{}, err
	}
	bp, err := compose.New(j.Core.Fetch, topo, j.Opt)
	if err != nil {
		return Result{}, err
	}
	prog := j.Prog
	if prog == nil {
		if prog, err = workloads.Get(j.Workload); err != nil {
			return Result{}, err
		}
	} else if prog.SingleUse {
		// A pre-built single-use program may already have executed, and other
		// jobs in the batch may hold the same pointer; name the workload
		// instead so each job compiles its own copy.
		return Result{}, fmt.Errorf("pre-built program %s is single-use; pass it by workload name", prog.Name)
	}
	c := uarch.NewCore(j.Core, bp, prog, seed)
	if j.Warmup > 0 {
		c.Run(j.Warmup)
		c.ResetStats()
	}
	return Result{Sim: c.Run(j.Insts), Pipeline: bp}, nil
}

// RunFull executes jobs across workers and returns results in submission
// order.  The first job error (lowest index) aborts the batch after all
// in-flight jobs drain.
func RunFull(jobs []Sim, opt Options) ([]Result, error) {
	type slot struct {
		res Result
		err error
	}
	rs := Map(opt.Workers, len(jobs), func(i int) slot {
		res, err := jobs[i].run(Derive(opt.Seed, uint64(i)))
		if err != nil {
			err = fmt.Errorf("runner: job %d (%q on %s): %w", i, jobs[i].Topology, jobs[i].describeWorkload(), err)
		}
		return slot{res, err}
	})
	out := make([]Result, len(jobs))
	for i, r := range rs {
		if r.err != nil {
			return nil, r.err
		}
		out[i] = r.res
	}
	return out, nil
}

// Run is RunFull without the pipeline handles — the common case.
func Run(jobs []Sim, opt Options) ([]*stats.Sim, error) {
	full, err := RunFull(jobs, opt)
	if err != nil {
		return nil, err
	}
	out := make([]*stats.Sim, len(full))
	for i, r := range full {
		out[i] = r.Sim
	}
	return out, nil
}

func (j Sim) describeWorkload() string {
	if j.Prog != nil {
		return "program " + j.Prog.Name
	}
	return "workload " + j.Workload
}
