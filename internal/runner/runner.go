// Package runner is the parallel experiment engine: it fans a batch of
// independent full-core simulations (design × workload × core config) out
// across worker goroutines and merges the results back in deterministic
// submission order.
//
// Determinism is the contract, not a best effort.  Three properties make a
// batch's output bit-identical regardless of worker count:
//
//  1. every job gets its own compose.Pipeline and uarch.Core — no predictor
//     or core state is shared between jobs;
//  2. job i's seed is Derive(base, i), a splitmix64 stream indexed by
//     submission position, so a job's dynamics depend only on its position
//     in the batch, never on which worker ran it or when;
//  3. results land in out[i] for job i — workers race only over disjoint
//     slots, and the merged slice reads in submission order.
//
// Shared inputs are safe by construction: synthetic programs are immutable
// after build (per-execution behaviour state lives in each oracle's State
// slots) and the workloads cache hands every job the same instance, while
// single-use interpreted-ISA programs are compiled fresh per job.
package runner

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"cobra/internal/compose"
	"cobra/internal/interval"
	"cobra/internal/obs"
	"cobra/internal/program"
	"cobra/internal/stats"
	"cobra/internal/uarch"
	"cobra/internal/workloads"
)

// Derive returns the seed for the job at a submission index: the index-th
// output of a splitmix64 stream started at base.  Distinct indices give
// statistically independent seeds even for adjacent bases, and the result
// never collides with the "use the default" zero seed.
func Derive(base, index uint64) uint64 {
	x := base + (index+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 0x9E3779B97F4A7C15
	}
	return x
}

// Map runs fn(0) … fn(n-1) on up to workers goroutines and returns the
// results indexed by argument — the deterministic-merge primitive under
// Run, exported for experiments whose jobs need more than a Sim describes
// (post-run pipeline inspection, custom program construction).  workers <= 0
// means runtime.GOMAXPROCS(0); workers == 1 runs everything inline on the
// calling goroutine (the serial path).
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// Sim describes one independent full-core simulation.
type Sim struct {
	Topology string          // predictor topology (parsed per job)
	Opt      compose.Options // management-structure options
	Workload string          // resolved via workloads.Get when Prog is nil

	// Prog, when non-nil, overrides Workload with a pre-built program (e.g.
	// a non-default fetch geometry).  A shared instance must not be
	// SingleUse.
	Prog *program.Program

	Core   uarch.Config
	Insts  uint64 // measured instructions
	Warmup uint64 // instructions discarded before measurement

	// Attribution, when true, attaches a fresh obs.BranchProfile to the job's
	// core so the result carries per-PC misprediction attribution (H2P
	// analysis).  Each job gets its own profile — no cross-job sharing — so
	// determinism and the parallel merge are unaffected.
	Attribution bool
}

// Policy selects how a batch reacts to job failures.
type Policy int

const (
	// FailFast cancels the remaining jobs on the first failure and returns
	// the root-cause error (the lowest-index failure that is not a
	// cancellation cascade).  The default.
	FailFast Policy = iota
	// CollectAll lets every job run to completion (or failure), returning
	// the successful results alongside a *BatchError describing every
	// failed cell — one poisoned (design × workload) cell no longer kills
	// the whole sweep.
	CollectAll
)

// Options configures a batch run.
type Options struct {
	// Workers caps the worker goroutines: <= 0 means GOMAXPROCS, 1 forces
	// the serial in-line path.  The choice never changes results.
	Workers int
	// Seed is the base seed; job i runs with Derive(Seed, i).
	Seed uint64
	// Policy selects fail-fast (default) or collect-all error handling.
	Policy Policy
	// Timeout, when > 0, bounds each job's wall-clock run time; an
	// overrunning job aborts cooperatively with context.DeadlineExceeded.
	Timeout time.Duration
	// Ctx, when non-nil, cancels the whole batch when done (e.g. SIGINT).
	Ctx context.Context

	// Metrics, when non-nil, receives live batch telemetry (job counts,
	// simulated cycles/instructions) that a -metrics-addr endpoint can serve
	// while the batch runs.  Purely observational: counters never influence
	// job scheduling or results.
	Metrics *obs.Metrics
	// Progress, when non-nil, gets a one-line status report written every
	// ProgressEvery (default 5s) while the batch runs — the long-sweep
	// heartbeat.  A Metrics sink is created internally if none was given.
	Progress io.Writer
	// ProgressEvery overrides the progress reporting period.
	ProgressEvery time.Duration

	// SpanFor, when non-nil, returns the parent wall-clock span under which
	// job i's execution spans are recorded (nil parent = job untraced).  The
	// serving layer uses this to tie each job back to the HTTP request that
	// enqueued it; spans are pure observability and never affect results.
	SpanFor func(i int) *obs.ActiveSpan
	// ProgressFor, when non-nil, returns the live-progress sink job i
	// publishes phase transitions and cycle/instruction totals into (nil =
	// job unwatched).  The serving layer uses this to feed the per-run SSE
	// progress stream; like spans, sinks never affect results.
	ProgressFor func(i int) *obs.RunProgress
	// IntervalsFor, when non-nil, returns the windowed-telemetry recorder
	// job i samples into (nil = use the spec's own Observe.IntervalInsts
	// setting).  The serving layer uses this to expose live windows on the
	// SSE progress stream while the run is still in flight.
	IntervalsFor func(i int) *interval.Recorder
}

// JobError identifies which job of a batch failed and why.
type JobError struct {
	Index    int
	Topology string
	Workload string // "workload <name>" or "program <name>"
	Err      error
}

func (e *JobError) Error() string {
	return fmt.Sprintf("runner: job %d (%q on %s): %v", e.Index, e.Topology, e.Workload, e.Err)
}

func (e *JobError) Unwrap() error { return e.Err }

// PanicError is a job panic converted to an error, preserving the panic
// value and the goroutine stack at the point of the panic.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v\n%s", e.Value, e.Stack)
}

// BatchError aggregates every failed job of a CollectAll batch, ascending by
// job index.
type BatchError struct {
	Total int // jobs submitted
	Errs  []*JobError
}

func (e *BatchError) Error() string {
	if len(e.Errs) == 1 {
		return e.Errs[0].Error()
	}
	return fmt.Sprintf("runner: %d of %d jobs failed; first: %v", len(e.Errs), e.Total, e.Errs[0])
}

// Unwrap exposes the individual job errors to errors.Is/As.
func (e *BatchError) Unwrap() []error {
	out := make([]error, len(e.Errs))
	for i, je := range e.Errs {
		out[i] = je
	}
	return out
}

// Result pairs one job's counters with the pipeline that produced them, for
// post-run area/energy attribution.
type Result struct {
	Sim      *stats.Sim
	Pipeline *compose.Pipeline
	// Wall is the job's wall-clock run time (telemetry; excluded from any
	// simulated quantity).
	Wall time.Duration
	// Profile carries per-PC misprediction attribution when the job asked
	// for it (Sim.Attribution); nil otherwise.
	Profile *obs.BranchProfile
}

// run executes one job with an already-derived seed.  ctx cancellation is
// cooperative: the core polls it and the job reports ctx.Err().
func (j Sim) run(ctx context.Context, seed uint64, met *obs.Metrics) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err // batch already cancelled; don't start
	}
	topo, err := compose.ParseTopologyCached(j.Topology)
	if err != nil {
		return Result{}, err
	}
	bp, err := compose.New(j.Core.Fetch, topo, j.Opt)
	if err != nil {
		return Result{}, err
	}
	prog := j.Prog
	if prog == nil {
		if prog, err = workloads.Get(j.Workload); err != nil {
			return Result{}, err
		}
	} else if prog.SingleUse {
		// A pre-built single-use program may already have executed, and other
		// jobs in the batch may hold the same pointer; name the workload
		// instead so each job compiles its own copy.
		return Result{}, fmt.Errorf("pre-built program %s is single-use; pass it by workload name", prog.Name)
	}
	c := uarch.NewCore(j.Core, bp, prog, seed)
	c.SetContext(ctx)
	c.SetMetrics(met)
	var prof *obs.BranchProfile
	if j.Attribution {
		prof = obs.NewBranchProfile()
		c.SetBranchProfile(prof)
	}
	if j.Warmup > 0 {
		c.Run(j.Warmup)
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		c.ResetStats()
	}
	s := c.Run(j.Insts)
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	return Result{Sim: s, Pipeline: bp, Profile: prof}, nil
}

// safeRun is run behind a recover boundary: a panicking job (component bug,
// watchdog deadlock, poisoned workload) becomes a *PanicError carrying the
// panic value and stack instead of killing the whole process.
func (j Sim) safeRun(ctx context.Context, seed uint64, met *obs.Metrics) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return j.run(ctx, seed, met)
}

// batch is the scaffolding shared by RunFull and RunSpecs: the cancellable
// batch context, per-job timeout contexts, metrics accounting, the progress
// reporter, and policy-driven error collection.  exec runs one job; describe
// labels a failed one for its JobError.  Failed indices hold zero T.
func batch[T any](n int, opt Options,
	describe func(int) (topology, workload string),
	exec func(ctx context.Context, i int, met *obs.Metrics) (T, error)) ([]T, error) {
	base := opt.Ctx
	if base == nil {
		base = context.Background()
	}
	bctx, cancel := context.WithCancel(base)
	defer cancel()
	met := opt.Metrics
	if met == nil && opt.Progress != nil {
		met = obs.NewMetrics() // progress reporting needs a counter sink
	}
	met.AddJobs(n)
	if opt.Progress != nil {
		every := opt.ProgressEvery
		if every <= 0 {
			every = 5 * time.Second
		}
		tick := time.NewTicker(every)
		done := make(chan struct{})
		idle := make(chan struct{})
		go func() {
			defer close(idle)
			defer tick.Stop()
			for {
				select {
				case <-done:
					return
				case <-tick.C:
					fmt.Fprintln(opt.Progress, met.ProgressLine())
				}
			}
		}()
		// Wait for the reporter to finish any in-flight write before
		// returning, so callers may reuse the Progress writer immediately.
		defer func() { close(done); <-idle }()
	}
	type slot struct {
		res T
		err error
	}
	rs := Map(opt.Workers, n, func(i int) slot {
		ctx := bctx
		stop := context.CancelFunc(func() {})
		if opt.Timeout > 0 {
			ctx, stop = context.WithTimeout(bctx, opt.Timeout)
		}
		met.JobStarted()
		res, err := exec(ctx, i, met)
		stop()
		met.JobDone(err != nil)
		if err != nil && opt.Policy == FailFast {
			cancel()
		}
		return slot{res, err}
	})
	out := make([]T, n)
	var errs []*JobError
	for i, r := range rs {
		if r.err != nil {
			topo, wl := describe(i)
			errs = append(errs, &JobError{Index: i, Topology: topo, Workload: wl, Err: r.err})
			continue
		}
		out[i] = r.res
	}
	if len(errs) == 0 {
		return out, nil
	}
	if opt.Policy == CollectAll {
		return out, &BatchError{Total: n, Errs: errs}
	}
	// FailFast: return the root cause, not the cancellation cascade it
	// triggered in later-draining jobs.
	for _, e := range errs {
		if !errors.Is(e.Err, context.Canceled) {
			return nil, e
		}
	}
	return nil, errs[0]
}

// RunFull executes jobs across workers and returns results in submission
// order.  Failures are reported per Options.Policy: FailFast cancels the
// rest of the batch and returns (nil, *JobError) for the root cause;
// CollectAll runs everything and returns the successful results alongside a
// *BatchError (failed jobs leave zero Results at their index).
func RunFull(jobs []Sim, opt Options) ([]Result, error) {
	out, err := batch(len(jobs), opt,
		func(i int) (string, string) { return jobs[i].Topology, jobs[i].describeWorkload() },
		func(ctx context.Context, i int, met *obs.Metrics) (Result, error) {
			begin := time.Now()
			res, rerr := jobs[i].safeRun(ctx, Derive(opt.Seed, uint64(i)), met)
			res.Wall = time.Since(begin)
			var insts uint64
			if res.Sim != nil {
				insts = res.Sim.Instructions
			}
			met.ObserveJob(res.Wall, insts)
			return res, rerr
		})
	return out, err
}

// Run is RunFull without the pipeline handles — the common case.  Under
// CollectAll with failures, the returned slice still carries the successful
// sims (nil at failed indices) alongside the *BatchError.
func Run(jobs []Sim, opt Options) ([]*stats.Sim, error) {
	full, err := RunFull(jobs, opt)
	if full == nil {
		return nil, err
	}
	out := make([]*stats.Sim, len(full))
	for i, r := range full {
		out[i] = r.Sim
	}
	return out, err
}

func (j Sim) describeWorkload() string {
	if j.Prog != nil {
		return "program " + j.Prog.Name
	}
	return "workload " + j.Workload
}
