package trace

import (
	"bytes"
	"io"
	"testing"

	"cobra/internal/compose"
	"cobra/internal/pred"
	"cobra/internal/program"
	"cobra/internal/workloads"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{PC: 0x1000, Kind: program.KindBranch, Taken: true, Target: 0x2000},
		{PC: 0x1004, Kind: program.KindJump, Taken: true, Target: 0x3000},
		{PC: 0x3000, Kind: program.KindRet, Taken: true, Target: 0x1008},
		{PC: 0x1008, Kind: program.KindBranch, Taken: false, Target: 0},
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(recs)) {
		t.Errorf("Count = %d", w.Count())
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range recs {
		got, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("record %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewBufferString("NOPE!!")); err == nil {
		t.Error("bad magic must fail")
	}
	if _, err := NewReader(bytes.NewBufferString("")); err == nil {
		t.Error("empty stream must fail")
	}
}

func TestCapture(t *testing.T) {
	prog, err := workloads.Get("dhrystone")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := Capture(&buf, prog, 1, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no CFIs captured")
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var count uint64
	for {
		if _, err := r.Read(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		count++
	}
	if count != n {
		t.Errorf("read %d records, wrote %d", count, n)
	}
}

func TestTraceSimAccuracyExceedsInCore(t *testing.T) {
	// The idealized trace simulator sees perfect histories and immediate
	// updates, so for a history-hungry predictor it reports *optimistic*
	// accuracy relative to hardware conditions — the §II-B modelling error.
	prog, err := workloads.Get("gcc")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Capture(&buf, prog, 42, 200000); err != nil {
		t.Fatal(err)
	}
	p, err := compose.New(pred.DefaultConfig(),
		compose.MustParse("GTAG3 > BTB2 > BIM2"), compose.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(p, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Branches == 0 {
		t.Fatal("no branches simulated")
	}
	if res.Accuracy() < 0.7 {
		t.Errorf("trace-sim accuracy %.3f implausibly low", res.Accuracy())
	}
	t.Logf("trace-sim: branches=%d acc=%.4f", res.Branches, res.Accuracy())
}

func TestSimulateDeterministic(t *testing.T) {
	run := func() SimResult {
		// Programs carry stateful behaviours: every simulation needs a
		// freshly built instance.
		prog, _ := workloads.Get("dhrystone")
		var buf bytes.Buffer
		Capture(&buf, prog, 9, 50000)
		p, _ := compose.New(pred.DefaultConfig(),
			compose.MustParse("BIM2"), compose.Options{})
		r, _ := NewReader(&buf)
		res, err := Simulate(p, r)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if run() != run() {
		t.Error("trace simulation not deterministic")
	}
}
