package trace

import (
	"io"

	"cobra/internal/compose"
	"cobra/internal/pred"
	"cobra/internal/program"
)

// SimResult summarizes a trace-driven evaluation.
type SimResult struct {
	Branches    uint64
	Mispredicts uint64
	CFIs        uint64
}

// Accuracy is the conditional-branch direction accuracy.
func (r SimResult) Accuracy() float64 {
	if r.Branches == 0 {
		return 1
	}
	return 1 - float64(r.Mispredicts)/float64(r.Branches)
}

// MPKB returns mispredicts per thousand conditional branches.
func (r SimResult) MPKB() float64 {
	if r.Branches == 0 {
		return 0
	}
	return float64(r.Mispredicts) / float64(r.Branches) * 1000
}

// Simulate drives a composed pipeline with a trace under idealized
// trace-simulator semantics: every branch is predicted with a perfect,
// non-speculative history; outcomes update the predictor immediately; there
// is no wrong path and no update delay.  One branch per fetch packet, slot
// 0 — the serialized view a trace gives.
func Simulate(p *compose.Pipeline, r *Reader) (SimResult, error) {
	var res SimResult
	cycle := uint64(0)
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return res, nil
		}
		if err != nil {
			return res, err
		}
		res.CFIs++
		cycle += uint64(p.Depth()) + 1
		p.Tick(cycle)
		e, stages := p.Predict(cycle, rec.PC)
		final := stages[p.Depth()-1]
		slot := p.Cfg.SlotOf(rec.PC)
		fp := final[slot]

		slots := make([]pred.SlotInfo, p.Cfg.FetchWidth)
		si := pred.SlotInfo{Valid: true, PC: rec.PC}
		switch rec.Kind {
		case program.KindBranch:
			si.IsBranch = true
		case program.KindJump:
			si.IsJump = true
		case program.KindCall:
			si.IsCall = true
		case program.KindRet:
			si.IsRet = true
		case program.KindIndirect:
			si.IsIndir = true
		}
		predTaken := fp.DirValid && fp.Taken
		if rec.Kind != program.KindBranch {
			predTaken = true // unconditional flow: direction is known
		}
		si.Taken = predTaken
		cfi := -1
		next := p.Cfg.PacketBase(rec.PC) + uint64(p.Cfg.PktBytes())
		if predTaken {
			cfi = slot
			if fp.TgtValid {
				next = fp.Target
			}
		}
		slots[slot] = si
		p.Accept(cycle, e, final, slots, cfi, next)

		if rec.Kind == program.KindBranch {
			res.Branches++
			if predTaken != rec.Taken {
				res.Mispredicts++
			}
		}
		p.Resolve(cycle, e, slot, rec.Taken, rec.Target)
		p.Commit(cycle, e)
	}
}
