// Package trace provides a binary branch-trace format plus a trace-driven
// evaluator in the style of the software simulators the paper's §II-B
// discusses (ChampSim, CBPSim).
//
// The trace-driven evaluator drives the *same* composed predictor pipeline
// as the full core, but under the idealized conditions a trace simulator
// assumes: in-order branches only, perfect histories, immediate updates, no
// speculation, no wrong-path pollution, no update delay.  Comparing its
// accuracy against the in-core accuracy for the identical predictor
// quantifies the modelling error the paper argues software simulators hide
// — speculative history corruption, delayed commit-time updates, and
// superscalar packet effects simply do not exist in trace land.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"cobra/internal/program"
)

// Record is one retired control-flow instruction.
type Record struct {
	PC     uint64
	Kind   program.Kind
	Taken  bool
	Target uint64
}

const magic = "CBRT1\n"

// Writer streams records to a binary trace.
type Writer struct {
	w     *bufio.Writer
	count uint64
}

// NewWriter starts a trace stream.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one record (varint-packed: flags+kind, pc, target).
func (t *Writer) Write(r Record) error {
	var buf [binary.MaxVarintLen64 * 2]byte
	head := byte(r.Kind) << 1
	if r.Taken {
		head |= 1
	}
	if err := t.w.WriteByte(head); err != nil {
		return err
	}
	n := binary.PutUvarint(buf[:], r.PC)
	n += binary.PutUvarint(buf[n:], r.Target)
	if _, err := t.w.Write(buf[:n]); err != nil {
		return err
	}
	t.count++
	return nil
}

// Count returns the number of records written.
func (t *Writer) Count() uint64 { return t.count }

// Flush finishes the stream.
func (t *Writer) Flush() error { return t.w.Flush() }

// Reader consumes a binary trace.
type Reader struct {
	r *bufio.Reader
}

// NewReader validates the header and returns a reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if string(head) != magic {
		return nil, errors.New("trace: bad magic")
	}
	return &Reader{r: br}, nil
}

// Read returns the next record or io.EOF.
func (t *Reader) Read() (Record, error) {
	head, err := t.r.ReadByte()
	if err != nil {
		return Record{}, err
	}
	pc, err := binary.ReadUvarint(t.r)
	if err != nil {
		return Record{}, fmt.Errorf("trace: truncated record: %w", err)
	}
	tgt, err := binary.ReadUvarint(t.r)
	if err != nil {
		return Record{}, fmt.Errorf("trace: truncated record: %w", err)
	}
	return Record{
		PC:     pc,
		Kind:   program.Kind(head >> 1),
		Taken:  head&1 == 1,
		Target: tgt,
	}, nil
}

// Capture runs a program's oracle for n instructions and writes its
// control-flow records (the way one would capture a ChampSim trace).
func Capture(w io.Writer, prog *program.Program, seed uint64, n uint64) (uint64, error) {
	tw, err := NewWriter(w)
	if err != nil {
		return 0, err
	}
	o := program.NewOracle(prog, seed)
	for o.Count() < n {
		s := o.Next()
		if !s.Inst.Kind.IsCFI() {
			continue
		}
		if err := tw.Write(Record{
			PC: s.PC, Kind: s.Inst.Kind, Taken: s.Taken, Target: s.Target,
		}); err != nil {
			return tw.Count(), err
		}
	}
	return tw.Count(), tw.Flush()
}
