// Package backend is the unified execution seam between "what to run" (a
// canonical spec.RunSpec) and "where to run it".  Every tool used to make
// that choice itself — cobra-sim had a runRemote fork, cobra-experiments
// threaded a *client.Client through its Config, and anything new had to
// re-invent both — so the choice is now one interface with two
// implementations:
//
//   - Local executes in-process through runner.RunSpecs, inheriting its
//     panic containment, metrics accounting, and per-spec timeouts;
//   - Remote submits to a cobra-serve daemon through the retrying client,
//     riding out restarts, backpressure, and drains.
//
// Both return the same *spec.Outcome for the same spec, byte-identically:
// the spec digest pins the simulation, and the daemon runs the same
// spec.Exec this process would.  Callers therefore never branch on the
// backend kind for correctness — only for capabilities a remote result
// cannot carry (the live pipeline handle, attribution profiles), which is
// what Outcome's nil fields express.
package backend

import (
	"context"
	"errors"
	"fmt"

	"cobra/internal/client"
	"cobra/internal/obs"
	"cobra/internal/runner"
	"cobra/internal/spec"
)

// Backend executes canonical RunSpecs.  Implementations must be safe for
// concurrent use: grid-shaped callers fan Run out across worker goroutines.
type Backend interface {
	// Name identifies the backend for logs and result headers: "local", or
	// the daemon URL for a remote backend.
	Name() string
	// Run executes the simulation s describes and returns its outcome.  The
	// spec is not mutated; execution always happens on the canonical form,
	// so the outcome is the one s.Digest() addresses.  ctx cancels the run
	// cooperatively (layered under the spec's own TimeoutMS).
	Run(ctx context.Context, s *spec.RunSpec) (*spec.Outcome, error)
}

// Local runs specs in-process.  Each Run goes through runner.RunSpecs, so a
// panicking simulation becomes a *runner.PanicError instead of killing the
// process, and job telemetry lands on the shared metrics sink.
type Local struct {
	// Metrics, when non-nil, receives per-job telemetry (counts, wall time,
	// simulated cycles/instructions) exactly like a runner batch.
	Metrics *obs.Metrics
}

// Name implements Backend.
func (l *Local) Name() string { return "local" }

// Run implements Backend: one spec through the runner's containment
// boundary, bit-identical to a direct spec.Exec of the same spec.
func (l *Local) Run(ctx context.Context, s *spec.RunSpec) (*spec.Outcome, error) {
	var met *obs.Metrics
	if l != nil {
		met = l.Metrics
	}
	res, err := runner.RunSpecs([]*spec.RunSpec{s}, runner.Options{
		Workers: 1, Ctx: ctx, Metrics: met,
	})
	if err != nil {
		// Single-spec batch: unwrap the runner's job framing so callers see
		// the execution error itself, as spec.Exec would have returned it.
		var je *runner.JobError
		if errors.As(err, &je) {
			return nil, je.Err
		}
		return nil, err
	}
	return res[0].Outcome, nil
}

// Remote runs specs on a cobra-serve daemon through the retrying client.
// The returned outcome carries what the wire result does — counters, event
// traces — and leaves process-local handles (pipeline, attribution profile)
// nil.
type Remote struct {
	c   *client.Client
	url string
}

// NewRemote builds a Remote backend from a client configuration (BaseURL
// required; zero values elsewhere select the client defaults).
func NewRemote(cfg client.Config) (*Remote, error) {
	cl, err := client.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Remote{c: cl, url: cfg.BaseURL}, nil
}

// Name implements Backend.
func (r *Remote) Name() string { return r.url }

// Client exposes the underlying retrying client for callers that need the
// raw conversation (status polling, progress streams).
func (r *Remote) Client() *client.Client { return r.c }

// Run implements Backend: submit, poll to settlement, decode.
func (r *Remote) Run(ctx context.Context, s *spec.RunSpec) (*spec.Outcome, error) {
	res, err := r.c.Run(ctx, s.Clone())
	if err != nil {
		return nil, err
	}
	if res.Stats == nil {
		return nil, fmt.Errorf("backend: %s returned a result without counters", r.url)
	}
	return &spec.Outcome{
		Stats:       res.Stats,
		Events:      res.Events,
		EventsTotal: res.EventsTotal,
		Intervals:   res.Intervals,
	}, nil
}

// All fans specs out across up to workers goroutines on be and returns the
// outcomes in submission order — the deterministic-merge contract of
// runner.Map applied to an arbitrary backend.  Every spec is attempted;
// failures come back aggregated as a *runner.BatchError whose job indices
// identify the failed specs, with the successful outcomes still populated.
func All(ctx context.Context, be Backend, specs []*spec.RunSpec, workers int) ([]*spec.Outcome, error) {
	type slot struct {
		out *spec.Outcome
		err error
	}
	res := runner.Map(workers, len(specs), func(i int) slot {
		out, err := be.Run(ctx, specs[i])
		return slot{out, err}
	})
	outs := make([]*spec.Outcome, len(specs))
	var batch runner.BatchError
	batch.Total = len(specs)
	for i, r := range res {
		if r.err != nil {
			batch.Errs = append(batch.Errs, &runner.JobError{
				Index: i, Topology: specs[i].Topology,
				Workload: "workload " + specs[i].Workload, Err: r.err,
			})
			continue
		}
		outs[i] = r.out
	}
	if len(batch.Errs) > 0 {
		return outs, &batch
	}
	return outs, nil
}
