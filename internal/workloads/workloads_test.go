package workloads

import (
	"testing"

	"cobra/internal/program"
)

func TestAllWorkloadsBuildAndValidate(t *testing.T) {
	names := append(Names(), "dhrystone", "coremark", "sort", "fib", "dispatch")
	for _, n := range names {
		p, err := Get(n)
		if err != nil {
			t.Fatalf("Get(%q): %v", n, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", n, err)
		}
		// ISA kernels are legitimately tiny; generated proxies must not be.
		if p.Len() < 30 && n != "fib" && n != "sort" && n != "dispatch" {
			t.Errorf("%s: suspiciously small image (%d insts)", n, p.Len())
		}
	}
}

func TestUnknownWorkload(t *testing.T) {
	if _, err := Get("nosuch"); err == nil {
		t.Error("unknown workload must error")
	}
}

func TestOracleRunsForMillions(t *testing.T) {
	for _, n := range Names() {
		p, _ := Get(n)
		o := program.NewOracle(p, 42)
		branches := 0
		for i := 0; i < 200000; i++ {
			s := o.Next()
			if s.Inst.Kind == program.KindBranch {
				branches++
			}
		}
		if branches == 0 {
			t.Errorf("%s: no branches in 200k instructions", n)
		}
		density := float64(branches) / 200000
		if density < 0.02 || density > 0.5 {
			t.Errorf("%s: implausible branch density %.3f", n, density)
		}
	}
}

func TestWorkloadsAreDeterministic(t *testing.T) {
	sig := func() uint64 {
		p, _ := Get("gcc")
		o := program.NewOracle(p, 42)
		var s uint64
		for i := 0; i < 20000; i++ {
			st := o.Next()
			s = s*31 + st.PC
			if st.Taken {
				s++
			}
		}
		return s
	}
	if sig() != sig() {
		t.Error("workload generation/execution is not deterministic")
	}
}

func TestProfilesHaveDistinctSeeds(t *testing.T) {
	seen := map[uint64]string{}
	for _, p := range profiles {
		if prev, dup := seen[p.Seed]; dup {
			t.Errorf("profiles %s and %s share seed %d", prev, p.Name, p.Seed)
		}
		seen[p.Seed] = p.Name
	}
}

func TestISAWorkloadsExecute(t *testing.T) {
	for _, n := range []string{"sort", "fib", "dispatch"} {
		p, err := Get(n)
		if err != nil {
			t.Fatalf("Get(%q): %v", n, err)
		}
		o := program.NewOracle(p, 1)
		branches, cfis := 0, 0
		for i := 0; i < 50000; i++ {
			s := o.Next()
			if s.Inst.Kind == program.KindBranch {
				branches++
			}
			if s.Inst.Kind.IsCFI() {
				cfis++
			}
		}
		if cfis == 0 {
			t.Errorf("%s: no control flow executed", n)
		}
		if n != "dispatch" && branches == 0 {
			t.Errorf("%s: no conditional branches executed", n)
		}
	}
}

func TestGetProfile(t *testing.T) {
	p, ok := GetProfile("mcf")
	if !ok || p.Name != "mcf" {
		t.Error("GetProfile(mcf) failed")
	}
	if _, ok := GetProfile("dhrystone"); ok {
		t.Error("dhrystone is not a SPECint proxy profile")
	}
}

func TestCoreMarkHasHammocks(t *testing.T) {
	p := CoreMark()
	hammocks := 0
	for pc := p.Entry; pc < p.Entry+uint64(p.Len()*8); pc += 4 {
		i := p.At(pc)
		if i == nil || i.Kind != program.KindBranch {
			continue
		}
		if i.Target > i.PC && (i.Target-i.PC)/4 <= 8 {
			hammocks++
		}
	}
	if hammocks < 4 {
		t.Errorf("coremark proxy should be hammock-rich, found %d", hammocks)
	}
}

func TestHardnessOrdering(t *testing.T) {
	// The profile knobs should make mcf/leela harder (more WHard weight)
	// than perlbench/x264 — a static sanity check on the calibration.
	frac := func(name string) float64 {
		p, _ := GetProfile(name)
		tot := p.WEasy + p.WHard + p.WPattern + p.WCorr + p.WLocal
		return p.WHard / tot
	}
	if !(frac("mcf") > frac("perlbench") && frac("leela") > frac("x264")) {
		t.Error("hard-branch fractions do not reflect the SPECint hardness ordering")
	}
}

func TestGetMemoizesSyntheticPrograms(t *testing.T) {
	for _, name := range []string{"gcc", "dhrystone", "coremark"} {
		a, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("%s: Get rebuilt a cacheable program", name)
		}
		if a.SingleUse {
			t.Errorf("%s: cached program marked single-use", name)
		}
	}
	// ISA kernels interpret a mutable machine: every Get must be fresh.
	a, err := Get("sort")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Get("sort")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("sort: single-use ISA program was shared")
	}
	if !a.SingleUse {
		t.Error("sort: ISA program not marked single-use")
	}
}

func TestBuildWithGeometryMemoizesPerWidth(t *testing.T) {
	p, ok := GetProfile("gcc")
	if !ok {
		t.Fatal("gcc profile missing")
	}
	if BuildWithGeometry(p, 4) != BuildWithGeometry(p, 4) {
		t.Error("same geometry rebuilt")
	}
	if BuildWithGeometry(p, 4) == BuildWithGeometry(p, 2) {
		t.Error("different geometries shared one program")
	}
}
