// Package workloads provides the benchmark suite: ten SPECint17 *proxies*
// plus Dhrystone and CoreMark proxies.
//
// Substitution rationale (see DESIGN.md): the paper runs SPEC CPU2017
// binaries with reference inputs on an FPGA-simulated BOOM.  Neither is
// available, and a branch-predictor study fundamentally needs branch
// *populations* with realistic structure rather than SPEC semantics.  Each
// proxy is a closed synthetic program whose control-flow population —
// biased/easy branches, hard data-dependent branches, global-pattern and
// history-correlated branches, local-periodic branches, fixed-trip loops,
// short hammocks, indirect switches, call trees — and memory working set
// are parameterized per benchmark, following the published hardness
// ordering of SPECint17 branch behaviour (mcf/leela/deepsjeng/xz hard;
// x264/xalancbmk/perlbench easy; gcc/omnetpp/exchange2 mid).
package workloads

import (
	"fmt"
	"sort"
	"sync"

	"cobra/internal/isa"
	"cobra/internal/program"
)

// Profile parameterizes a synthetic benchmark's population.
type Profile struct {
	Name string
	Seed uint64

	Funcs         int // leaf functions called from the main loop
	BlocksPerFunc int
	OpsPerBlock   int

	LoadFrac, StoreFrac, FPFrac float64
	WorkingSet                  uint64 // bytes; drives D-cache miss rate

	// Branch-population weights (relative; sampled per block).
	WEasy    float64 // near-constant direction (P = .002 / .998)
	WBiased  float64 // moderately biased (P ~ .06 / .94)
	WHard    float64 // data-dependent, barely biased (P in [.15, .3] band)
	WPattern float64 // short repeating global pattern
	WCorr    float64 // correlated with outcome k branches ago
	WLocal   float64 // local-periodic (phase invisible globally)

	BranchDensity    float64 // probability a block ends in a conditional branch
	HammockFrac      float64 // fraction of conditional branches that are short forward hammocks
	InnerLoopFrac    float64 // probability a block contains a fixed-trip inner loop
	TripMin, TripMax int

	IndirectFanout int // switch targets in the main loop (0 = none)
}

type genState struct {
	p   Profile
	b   *program.Builder
	rng uint64
}

func (g *genState) rand() uint64 {
	x := g.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	g.rng = x
	return x * 0x2545F4914F6CDD1D
}

func (g *genState) randF() float64 { return float64(g.rand()>>11) / float64(1<<53) }

func (g *genState) randN(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + int(g.rand()%uint64(hi-lo+1))
}

func (g *genState) mem() program.MemBehavior {
	if g.randF() < 0.5 {
		return &program.StrideMem{
			Base:   0x1000_0000 + (g.rand() & 0xFFFF00),
			Stride: 8,
			Span:   4096,
		}
	}
	ws := g.p.WorkingSet
	if ws == 0 {
		ws = 1 << 14
	}
	return &program.RandMem{Base: 0x2000_0000, Size: ws}
}

// sampleDir draws a conditional-branch behaviour from the profile weights.
func (g *genState) sampleDir() program.DirBehavior {
	total := g.p.WEasy + g.p.WBiased + g.p.WHard + g.p.WPattern + g.p.WCorr + g.p.WLocal
	if total == 0 {
		return &program.BiasedDir{P: 0.05}
	}
	r := g.randF() * total
	switch {
	case r < g.p.WEasy:
		if g.rand()&1 == 0 {
			return &program.BiasedDir{P: 0.002}
		}
		return &program.BiasedDir{P: 0.998}
	case r < g.p.WEasy+g.p.WBiased:
		if g.rand()&1 == 0 {
			return &program.BiasedDir{P: 0.04 + 0.05*g.randF()}
		}
		return &program.BiasedDir{P: 0.91 + 0.05*g.randF()}
	case r < g.p.WEasy+g.p.WBiased+g.p.WHard:
		p := 0.15 + 0.15*g.randF()
		if g.rand()&1 == 0 {
			p = 1 - p
		}
		return &program.BiasedDir{P: p}
	case r < g.p.WEasy+g.p.WBiased+g.p.WHard+g.p.WPattern:
		// Real periodic branches skew toward a majority direction: a period
		// 4-9 pattern with 1-2 minority positions.  A bimodal predictor gets
		// the majority right (misses 1-2/n); history predictors learn it
		// fully.
		n := g.randN(4, 9)
		maj := g.rand()&1 == 0
		bits := make([]bool, n)
		for i := range bits {
			bits[i] = maj
		}
		bits[int(g.rand())&0x7fffffff%n] = !maj
		if n >= 7 && g.rand()&1 == 0 {
			bits[int(g.rand())&0x7fffffff%n] = !maj
		}
		return &program.PatternDir{Bits: bits}
	case r < g.p.WEasy+g.p.WBiased+g.p.WHard+g.p.WPattern+g.p.WCorr:
		return &program.CorrDir{
			Depth:  uint(g.randN(1, 8)),
			Invert: g.rand()&1 == 0,
			Noise:  0.01,
		}
	default:
		return &program.LocalPeriodicDir{Period: g.randN(3, 17)}
	}
}

// block emits one basic block: ops, an optional inner loop, an optional
// hammock, and an optional block-ending conditional branch over a small tail.
func (g *genState) block() {
	b := g.b
	b.Ops(g.p.OpsPerBlock, g.p.LoadFrac, g.p.StoreFrac, g.p.FPFrac, g.mem)
	if g.randF() < g.p.InnerLoopFrac {
		trip := g.randN(g.p.TripMin, g.p.TripMax)
		b.Loop(trip, func() {
			b.Ops(g.randN(3, 7), g.p.LoadFrac, 0, 0, g.mem)
		})
	}
	if g.randF() < g.p.BranchDensity {
		if g.randF() < g.p.HammockFrac {
			// Short forward hammock (SFB candidate).
			b.Hammock(0.1+0.3*g.randF(), g.randN(1, 4), program.ClassALU)
			return
		}
		fx := b.ForwardBranch(g.sampleDir())
		b.Ops(g.randN(2, 6), g.p.LoadFrac, g.p.StoreFrac, 0, g.mem)
		fx.Bind()
		b.Ops(1, 0, 0, 0, nil)
	}
}

// Programs built from a profile are immutable after sealing (all behaviour
// state lives in per-oracle State slots), so one instance can serve every
// simulation — including concurrent ones — that wants the same workload.
// The cache below memoizes builds per (profile, geometry); only the
// interpreted-ISA kernels are excluded, because their behaviours share a
// mutable Machine and each run needs a fresh compile.
var (
	cacheMu sync.Mutex
	cache   = map[cacheKey]*program.Program{}
)

type cacheKey struct {
	profile   Profile // zero Profile except Name for the fixed proxies
	instBytes int
}

// memo returns the cached program for key, building it on first use.  The
// build runs under the lock: builds are microseconds against simulations
// that are seconds, and single-flight construction keeps the cache simple.
func memo(key cacheKey, build func() *program.Program) *program.Program {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if prog, ok := cache[key]; ok {
		return prog
	}
	prog := build()
	if prog.SingleUse {
		panic(fmt.Sprintf("workloads: %s is single-use and must not be cached", prog.Name))
	}
	cache[key] = prog
	return prog
}

// Build generates the closed program for a profile (4-byte instructions).
func Build(p Profile) *program.Program { return BuildWithGeometry(p, 4) }

// BuildWithGeometry returns the profile's program at a chosen instruction
// width (2 for RVC-style 8-wide fetch experiments, 4 for the default
// geometry), memoized per (profile, width).  The control-flow structure and
// dynamic behaviour are identical across widths; only addresses scale.
func BuildWithGeometry(p Profile, instBytes int) *program.Program {
	return memo(cacheKey{p, instBytes}, func() *program.Program {
		return buildWithGeometry(p, instBytes)
	})
}

func buildWithGeometry(p Profile, instBytes int) *program.Program {
	g := &genState{p: p, rng: p.Seed ^ 0xC0B4A}
	if g.rng == 0 {
		g.rng = 1
	}
	g.b = program.NewBuilder(p.Name, 0x10000, instBytes, p.Seed)
	b := g.b

	// Layout: entry jumps over the function bodies to the main loop.
	toMain := b.ForwardJump()
	funcs := make([]uint64, 0, p.Funcs)
	for f := 0; f < p.Funcs; f++ {
		funcs = append(funcs, b.Func(func() {
			for blk := 0; blk < p.BlocksPerFunc; blk++ {
				g.block()
			}
		}))
	}
	toMain.Bind()

	// Main loop: call every function, then optionally dispatch through an
	// indirect switch.
	var cases []uint64
	var caseExits []*program.Fixup
	if p.IndirectFanout > 1 {
		skip := b.ForwardJump()
		for i := 0; i < p.IndirectFanout; i++ {
			cases = append(cases, b.PC())
			b.Ops(g.randN(2, 5), p.LoadFrac, 0, 0, g.mem)
			caseExits = append(caseExits, b.ForwardJump())
		}
		skip.Bind()
	}
	head := b.PC()
	for _, fn := range funcs {
		b.Call(fn)
		b.Ops(1, 0, 0, 0, nil)
	}
	if len(cases) > 0 {
		b.Indirect(&program.WeightedTgt{Targets: cases, P0: 0.5})
		// Cases rejoin here.
		for _, fx := range caseExits {
			fx.Bind()
		}
		b.Ops(1, 0, 0, 0, nil)
	}
	b.Jump(head)

	prog, err := b.Seal()
	if err != nil {
		panic(fmt.Sprintf("workloads: %s does not seal: %v", p.Name, err))
	}
	return prog
}

// profiles is the SPECint17 proxy suite, ordered as the paper's Fig. 10.
var profiles = []Profile{
	{
		Name: "perlbench", Seed: 101,
		Funcs: 10, BlocksPerFunc: 12, OpsPerBlock: 5,
		LoadFrac: 0.22, StoreFrac: 0.10, FPFrac: 0.0, WorkingSet: 1 << 16,
		WEasy: 6, WBiased: 0.5, WHard: 0.25, WPattern: 1.5, WCorr: 1.5, WLocal: 0.8,
		BranchDensity: 0.75, HammockFrac: 0.08, InnerLoopFrac: 0.15,
		TripMin: 8, TripMax: 24, IndirectFanout: 6,
	},
	{
		Name: "gcc", Seed: 102,
		Funcs: 18, BlocksPerFunc: 18, OpsPerBlock: 4,
		LoadFrac: 0.25, StoreFrac: 0.12, FPFrac: 0.0, WorkingSet: 1 << 20,
		WEasy: 5.5, WBiased: 0.7, WHard: 0.55, WPattern: 1.5, WCorr: 1.8, WLocal: 0.8,
		BranchDensity: 0.85, HammockFrac: 0.08, InnerLoopFrac: 0.1,
		TripMin: 8, TripMax: 16, IndirectFanout: 8,
	},
	{
		Name: "mcf", Seed: 103,
		Funcs: 4, BlocksPerFunc: 8, OpsPerBlock: 4,
		LoadFrac: 0.35, StoreFrac: 0.08, FPFrac: 0.0, WorkingSet: 1 << 24,
		WEasy: 4, WBiased: 1.0, WHard: 1.6, WPattern: 0.5, WCorr: 0.8, WLocal: 0.4,
		BranchDensity: 0.9, HammockFrac: 0.08, InnerLoopFrac: 0.05,
		TripMin: 8, TripMax: 16, IndirectFanout: 0,
	},
	{
		Name: "omnetpp", Seed: 104,
		Funcs: 12, BlocksPerFunc: 14, OpsPerBlock: 5,
		LoadFrac: 0.28, StoreFrac: 0.12, FPFrac: 0.0, WorkingSet: 1 << 22,
		WEasy: 5, WBiased: 0.8, WHard: 0.55, WPattern: 1.2, WCorr: 1.5, WLocal: 1.2,
		BranchDensity: 0.8, HammockFrac: 0.08, InnerLoopFrac: 0.1,
		TripMin: 8, TripMax: 18, IndirectFanout: 10,
	},
	{
		Name: "xalancbmk", Seed: 105,
		Funcs: 14, BlocksPerFunc: 16, OpsPerBlock: 6,
		LoadFrac: 0.25, StoreFrac: 0.10, FPFrac: 0.0, WorkingSet: 1 << 19,
		WEasy: 6, WBiased: 0.5, WHard: 0.3, WPattern: 1.5, WCorr: 1.2, WLocal: 0.8,
		BranchDensity: 0.7, HammockFrac: 0.1, InnerLoopFrac: 0.2,
		TripMin: 8, TripMax: 20, IndirectFanout: 6,
	},
	{
		Name: "x264", Seed: 106,
		Funcs: 5, BlocksPerFunc: 8, OpsPerBlock: 9,
		LoadFrac: 0.30, StoreFrac: 0.15, FPFrac: 0.05, WorkingSet: 1 << 18,
		WEasy: 7, WBiased: 0.3, WHard: 0.12, WPattern: 1, WCorr: 0.5, WLocal: 0.8,
		BranchDensity: 0.5, HammockFrac: 0.1, InnerLoopFrac: 0.35,
		TripMin: 8, TripMax: 64, IndirectFanout: 0,
	},
	{
		Name: "deepsjeng", Seed: 107,
		Funcs: 10, BlocksPerFunc: 12, OpsPerBlock: 4,
		LoadFrac: 0.24, StoreFrac: 0.10, FPFrac: 0.0, WorkingSet: 1 << 21,
		WEasy: 4.5, WBiased: 1.0, WHard: 0.8, WPattern: 1, WCorr: 1.5, WLocal: 0.7,
		BranchDensity: 0.9, HammockFrac: 0.1, InnerLoopFrac: 0.08,
		TripMin: 8, TripMax: 18, IndirectFanout: 4,
	},
	{
		Name: "leela", Seed: 108,
		Funcs: 9, BlocksPerFunc: 11, OpsPerBlock: 4,
		LoadFrac: 0.26, StoreFrac: 0.09, FPFrac: 0.02, WorkingSet: 1 << 20,
		WEasy: 4, WBiased: 1.2, WHard: 1.3, WPattern: 0.8, WCorr: 1, WLocal: 0.8,
		BranchDensity: 0.9, HammockFrac: 0.1, InnerLoopFrac: 0.1,
		TripMin: 8, TripMax: 16, IndirectFanout: 0,
	},
	{
		Name: "exchange2", Seed: 109,
		Funcs: 12, BlocksPerFunc: 10, OpsPerBlock: 5,
		LoadFrac: 0.18, StoreFrac: 0.08, FPFrac: 0.0, WorkingSet: 1 << 15,
		WEasy: 4.5, WBiased: 0.8, WHard: 0.8, WPattern: 2, WCorr: 1.5, WLocal: 1.5,
		BranchDensity: 0.85, HammockFrac: 0.08, InnerLoopFrac: 0.25,
		TripMin: 8, TripMax: 16, IndirectFanout: 0,
	},
	{
		Name: "xz", Seed: 110,
		Funcs: 8, BlocksPerFunc: 11, OpsPerBlock: 5,
		LoadFrac: 0.30, StoreFrac: 0.14, FPFrac: 0.0, WorkingSet: 1 << 23,
		WEasy: 4.5, WBiased: 1.0, WHard: 0.9, WPattern: 1, WCorr: 1.2, WLocal: 0.6,
		BranchDensity: 0.8, HammockFrac: 0.08, InnerLoopFrac: 0.15,
		TripMin: 8, TripMax: 32, IndirectFanout: 0,
	},
}

// Names returns the SPECint17 proxy names in Fig. 10 order.
func Names() []string {
	out := make([]string, len(profiles))
	for i, p := range profiles {
		out[i] = p.Name
	}
	return out
}

// Get returns the named workload: a SPECint proxy, "dhrystone", "coremark",
// or one of the interpreted-ISA kernels ("sort", "fib", "dispatch") whose
// branch outcomes come from real register/memory semantics.  Synthetic
// programs are memoized — repeated Gets return the same immutable instance,
// which is safe to run on any number of cores at once.  The ISA kernels are
// single-use (their behaviours share a mutable Machine) and are compiled
// fresh on every call.
func Get(name string) (*program.Program, error) {
	switch name {
	case "dhrystone":
		return Dhrystone(), nil
	case "coremark":
		return CoreMark(), nil
	case "sort":
		p, _, err := isa.Compile("sort", isa.SortSource)
		return p, err
	case "fib":
		p, _, err := isa.Compile("fib", isa.FibSource)
		return p, err
	case "dispatch":
		p, _, err := isa.Compile("dispatch", isa.DispatchSource)
		return p, err
	}
	for _, p := range profiles {
		if p.Name == name {
			return Build(p), nil
		}
	}
	all := append(Names(), "dhrystone", "coremark", "sort", "fib", "dispatch")
	sort.Strings(all)
	return nil, fmt.Errorf("workloads: unknown workload %q (have %v)", name, all)
}

// GetProfile returns the profile for a SPECint proxy (for sweeps).
func GetProfile(name string) (Profile, bool) {
	for _, p := range profiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Dhrystone returns the Dhrystone proxy: a small synthetic systems loop —
// tiny code footprint, highly predictable branches, a couple of short
// function calls — the benchmark §II-A and §VI-B use.
func Dhrystone() *program.Program {
	return memo(cacheKey{Profile{Name: "dhrystone"}, 4}, buildDhrystone)
}

func buildDhrystone() *program.Program {
	b := program.NewBuilder("dhrystone", 0x10000, 4, 777)
	toMain := b.ForwardJump()
	f1 := b.Func(func() {
		b.Ops(4, 0.2, 0.1, 0, func() program.MemBehavior {
			return &program.StrideMem{Base: 0x100000, Stride: 8, Span: 512}
		})
		fx := b.ForwardBranch(&program.BiasedDir{P: 0.95})
		b.Ops(2, 0, 0, 0, nil)
		fx.Bind()
		b.Ops(1, 0, 0, 0, nil)
	})
	f2 := b.Func(func() {
		b.Ops(3, 0.2, 0.2, 0, func() program.MemBehavior {
			return &program.StrideMem{Base: 0x110000, Stride: 8, Span: 256}
		})
		b.Loop(3, func() { b.Ops(2, 0, 0, 0, nil) })
	})
	toMain.Bind()
	head := b.PC()
	b.Ops(3, 0.1, 0.1, 0, func() program.MemBehavior {
		return &program.StrideMem{Base: 0x120000, Stride: 8, Span: 256}
	})
	fx := b.ForwardBranch(&program.AlternatingDir{})
	b.Ops(2, 0, 0, 0, nil)
	fx.Bind()
	b.Call(f1)
	b.Ops(1, 0, 0, 0, nil)
	b.Call(f2)
	b.Ops(2, 0, 0, 0, nil)
	b.Jump(head)
	return b.MustSeal()
}

// CoreMark returns the CoreMark proxy: state-machine processing with many
// short forward hammocks (50/50 data-dependent skips) plus list and matrix
// phases — the workload whose accuracy §VI-C improves from 97% to 99.1%
// with SFB predication.
func CoreMark() *program.Program {
	return memo(cacheKey{Profile{Name: "coremark"}, 4}, buildCoreMark)
}

func buildCoreMark() *program.Program {
	b := program.NewBuilder("coremark", 0x10000, 4, 888)
	toMain := b.ForwardJump()
	// State machine: pattern-driven transitions + hammocks.
	fsm := b.Func(func() {
		b.Ops(2, 0.2, 0, 0, func() program.MemBehavior {
			return &program.StrideMem{Base: 0x200000, Stride: 4, Span: 1024}
		})
		for i := 0; i < 2; i++ {
			b.Hammock(0.3, 2, program.ClassALU)
			b.Ops(3, 0, 0, 0, nil)
		}
		fx := b.ForwardBranch(&program.PatternDir{Bits: []bool{true, false, true, true, false}})
		b.Ops(2, 0, 0, 0, nil)
		fx.Bind()
		b.Ops(1, 0, 0, 0, nil)
	})
	// List processing: pointer-ish loads, a data-dependent hammock per call.
	list := b.Func(func() {
		b.Loop(8, func() {
			b.Ops(4, 0.4, 0.05, 0, func() program.MemBehavior {
				return &program.RandMem{Base: 0x300000, Size: 1 << 13}
			})
		})
		b.Hammock(0.3, 2, program.ClassALU)
	})
	// Matrix phase: long predictable inner loops.
	matrix := b.Func(func() {
		b.Loop(16, func() {
			b.Ops(4, 0.3, 0.15, 0, func() program.MemBehavior {
				return &program.StrideMem{Base: 0x400000, Stride: 8, Span: 2048}
			})
		})
	})
	toMain.Bind()
	head := b.PC()
	b.Call(fsm)
	b.Ops(1, 0, 0, 0, nil)
	b.Call(list)
	b.Ops(1, 0, 0, 0, nil)
	b.Call(matrix)
	b.Ops(1, 0, 0, 0, nil)
	b.Jump(head)
	return b.MustSeal()
}
