package workloads

import (
	"crypto/sha256"
	"fmt"
	"sync"

	"cobra/internal/isa"
)

// Fingerprints are memoized per workload name: synthetic programs are
// themselves cached, so hashing them twice is merely wasteful, but the
// interpreted-ISA kernels recompile on every Get and the hash walk is the
// only reason a spec validation would pay that compile.
var (
	fpMu sync.Mutex
	fps  = map[string]string{}
)

// Fingerprint returns the content hash of the named workload's program
// image (see program.Fingerprint).  The hash identifies the workload
// *definition*: regenerating it after a generator or kernel change yields a
// new value, which is what lets RunSpec digests invalidate stale cached
// results.
func Fingerprint(name string) (string, error) {
	fpMu.Lock()
	if f, ok := fps[name]; ok {
		fpMu.Unlock()
		return f, nil
	}
	fpMu.Unlock()
	p, err := Get(name)
	if err != nil {
		return "", err
	}
	f := p.Fingerprint()
	// An interpreted kernel's behaviours hash by type only (they bridge to a
	// live machine), so fold the source text in: an edit that keeps the
	// instruction stream's hashed shape — say an immediate operand — must
	// still move the fingerprint.
	if src, ok := kernelSource(name); ok {
		sum := sha256.Sum256([]byte(f + "\nsource:" + src))
		f = fmt.Sprintf("sha256:%x", sum)
	}
	fpMu.Lock()
	fps[name] = f
	fpMu.Unlock()
	return f, nil
}

// kernelSource returns the assembly text of an interpreted-ISA kernel.
func kernelSource(name string) (string, bool) {
	switch name {
	case "sort":
		return isa.SortSource, true
	case "fib":
		return isa.FibSource, true
	case "dispatch":
		return isa.DispatchSource, true
	}
	return "", false
}

// Known reports whether name resolves to a workload without building it.
func Known(name string) bool {
	switch name {
	case "dhrystone", "coremark", "sort", "fib", "dispatch":
		return true
	}
	for _, p := range profiles {
		if p.Name == name {
			return true
		}
	}
	return false
}
