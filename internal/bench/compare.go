package bench

import "fmt"

// CompareOptions tune the regression gates.
type CompareOptions struct {
	// AllocTol is the fractional headroom for allocation-rate metrics
	// (default 0.10): new may exceed old by this fraction plus a small
	// absolute slack before it counts as a regression.  Allocation counts
	// are deterministic for a fixed Go version but drift slightly across
	// runtime releases, so an exact gate would break on toolchain bumps.
	AllocTol float64
	// TimingTol, when > 0, additionally gates the machine-dependent
	// throughput metrics: new insts/sec may fall below old by at most this
	// fraction.  Leave 0 (off) unless old and new ran on the same pinned
	// hardware — shared hosts show ±30% noise.
	TimingTol float64
}

func (o CompareOptions) allocTol() float64 {
	if o.AllocTol > 0 {
		return o.AllocTol
	}
	return 0.10
}

// Compare diffs a new report against an old (typically committed) one and
// returns the list of regressions, empty when the new report is acceptable.
//
// Gates, from hardest to softest:
//   - mode/schema: quick and full reports are incomparable;
//   - determinism: committed instructions, simulated cycles, and mispredict
//     counts must match the old report EXACTLY for every scenario both
//     reports contain (simulated quantities are deterministic per spec
//     digest, machine-independently);
//   - allocations: per-scenario mallocs-per-kilo-instruction and the
//     per-design hot-loop budgets may not grow beyond AllocTol headroom; the
//     steady-state hot-loop count may not grow at all;
//   - timing (only when TimingTol > 0): insts/sec may not drop by more than
//     TimingTol.
//
// A scenario present in old but absent from new is a regression (coverage
// loss); a new scenario absent from old is fine.
func Compare(old, new *Report, opt CompareOptions) []string {
	var regs []string
	reg := func(format string, args ...any) { regs = append(regs, fmt.Sprintf(format, args...)) }

	if old.Quick != new.Quick {
		reg("mode mismatch: old quick=%v, new quick=%v (reports are incomparable)", old.Quick, new.Quick)
		return regs
	}

	newSc := map[string]ScenarioResult{}
	for _, s := range new.Scenarios {
		newSc[s.Name] = s
	}
	allocTol := opt.allocTol()
	for _, o := range old.Scenarios {
		n, ok := newSc[o.Name]
		if !ok {
			reg("scenario %s: present in old report, missing from new", o.Name)
			continue
		}
		if n.Insts != o.Insts || n.Cycles != o.Cycles || n.Mispredicts != o.Mispredicts {
			reg("scenario %s: deterministic counters diverged: insts %d→%d, cycles %d→%d, mispredicts %d→%d"+
				" (simulated behavior changed; if intended, regenerate the committed report)",
				o.Name, o.Insts, n.Insts, o.Cycles, n.Cycles, o.Mispredicts, n.Mispredicts)
		}
		// Absolute slack of 0.5 allocs/kinst keeps near-zero baselines from
		// tripping on a single stray allocation.
		if limit := o.MallocsPerKInst*(1+allocTol) + 0.5; n.MallocsPerKInst > limit {
			reg("scenario %s: allocation rate regressed: %.2f → %.2f mallocs/kinst (limit %.2f)",
				o.Name, o.MallocsPerKInst, n.MallocsPerKInst, limit)
		}
		if opt.TimingTol > 0 && n.InstsPerSec < o.InstsPerSec*(1-opt.TimingTol) {
			reg("scenario %s: throughput regressed: %.0f → %.0f insts/sec (tolerance %.0f%%)",
				o.Name, o.InstsPerSec, n.InstsPerSec, opt.TimingTol*100)
		}
	}

	newHL := map[string]HotLoopResult{}
	for _, h := range new.HotLoop {
		newHL[h.Design] = h
	}
	for _, o := range old.HotLoop {
		n, ok := newHL[o.Design]
		if !ok {
			reg("hot-loop %s: present in old report, missing from new", o.Design)
			continue
		}
		if n.SteadyAllocsPerOp > o.SteadyAllocsPerOp {
			reg("hot-loop %s: steady-state allocs/op regressed: %.2f → %.2f",
				o.Design, o.SteadyAllocsPerOp, n.SteadyAllocsPerOp)
		}
		if limit := float64(o.WarmupAllocs)*(1+allocTol) + 16; float64(n.WarmupAllocs) > limit {
			reg("hot-loop %s: warmup allocs regressed: %d → %d (limit %.0f)",
				o.Design, o.WarmupAllocs, n.WarmupAllocs, limit)
		}
		if limit := float64(o.ComposeAllocs)*(1+allocTol) + 16; float64(n.ComposeAllocs) > limit {
			reg("hot-loop %s: compose allocs regressed: %d → %d (limit %.0f)",
				o.Design, o.ComposeAllocs, n.ComposeAllocs, limit)
		}
	}
	return regs
}
