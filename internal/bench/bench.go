// Package bench is the committed-performance-trajectory harness behind
// cmd/cobra-bench: it runs a fixed scenario set — the Table I designs plus a
// small Fig. 10 grid — through the canonical spec.Exec path (via
// runner.RunSpecs, so what it measures is exactly what cobra-sim and
// cobra-serve execute), records both machine-independent metrics (committed
// instructions, simulated cycles, mispredicts, allocations) and
// machine-dependent ones (wall time, simulated-instructions-per-second)
// into a schema-versioned JSON report, and diffs two reports with
// regression gates (Compare).
//
// The machine-independent metrics are exact: simulated cycle counts are
// deterministic per spec digest (the determinism contract in
// internal/runner), so a committed BENCH_*.json is a cross-machine
// regression oracle, not just a local note.  Wall-clock numbers are
// recorded for trend reading but only gated behind an explicit timing
// tolerance, because shared CI hosts show ±30% run-to-run noise.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"cobra/internal/compose"
	"cobra/internal/runner"
	"cobra/internal/spec"
	"cobra/internal/workloads"
)

// Schema identifies the report format; SchemaVersion gates Compare.
const (
	Schema        = "cobra-bench"
	SchemaVersion = 1
)

// Config controls one harness run.
type Config struct {
	// Quick shrinks instruction budgets ~10× for smoke runs (CI). Reports
	// from different modes are not comparable; Compare enforces that.
	Quick bool
	// Workers caps runner parallelism (0 = GOMAXPROCS).
	Workers int
	// Reps is the measured repetition count per scenario; the median wall
	// time is reported. 0 defaults to 3 (1 in quick mode). An extra
	// unmeasured warm-up repetition always runs first.
	Reps int
	// Log, when non-nil, receives one progress line per phase.
	Log func(format string, args ...any)
}

func (c Config) reps() int {
	if c.Reps > 0 {
		return c.Reps
	}
	if c.Quick {
		return 1
	}
	return 3
}

func (c Config) logf(format string, args ...any) {
	if c.Log != nil {
		c.Log(format, args...)
	}
}

// Scenario is one named workload of the harness: a set of RunSpecs executed
// as a single runner batch.
type Scenario struct {
	Name  string
	Specs []*spec.RunSpec
}

// Scenarios returns the fixed scenario set: one single-spec scenario per
// Table I design (gcc, the suite's branchiest proxy) and "fig10-small", a
// designs × all-workloads grid at reduced instruction budget — the same
// shape as the committed fig10_small golden.
func Scenarios(quick bool) []Scenario {
	designInsts, designWarmup := uint64(100_000), uint64(10_000)
	gridInsts := uint64(15_000)
	if quick {
		designInsts, designWarmup = 10_000, 2_000
		gridInsts = 2_000
	}
	var out []Scenario
	for _, name := range spec.PresetNames() {
		s := mustPreset(name)
		s.Workload = "gcc"
		s.Insts = designInsts
		s.Warmup = designWarmup
		s.Seed = spec.DefaultSeed
		out = append(out, Scenario{Name: name, Specs: []*spec.RunSpec{s}})
	}
	var grid []*spec.RunSpec
	for _, name := range spec.PresetNames() {
		for _, w := range workloads.Names() {
			s := mustPreset(name)
			s.Workload = w
			s.Insts = gridInsts
			s.Seed = spec.DefaultSeed
			grid = append(grid, s)
		}
	}
	out = append(out, Scenario{Name: "fig10-small", Specs: grid})
	return out
}

func mustPreset(name string) *spec.RunSpec {
	s, err := spec.Preset(name)
	if err != nil {
		panic(err)
	}
	return s
}

// ScenarioResult is the measured record of one scenario.
type ScenarioResult struct {
	Name  string `json:"name"`
	Specs int    `json:"specs"`
	Reps  int    `json:"reps"`

	// Machine-independent (deterministic per spec digest; Compare gates
	// these exactly).
	Insts       uint64 `json:"insts"`
	Cycles      uint64 `json:"cycles"`
	Mispredicts uint64 `json:"mispredicts"`

	// Allocation rate (machine-independent up to runtime-version noise;
	// Compare gates it with tolerance).
	Mallocs         uint64  `json:"mallocs"`
	MallocsPerKInst float64 `json:"mallocs_per_kinst"`

	// Machine-dependent (recorded always, gated only behind -timing-tol).
	WallNSMedian int64   `json:"wall_ns_median"`
	InstsPerSec  float64 `json:"insts_per_sec"`
	NSPerCycle   float64 `json:"ns_per_cycle"`
}

// HotLoopResult records the per-design allocation budget of the bare
// pipeline hot loop — the numbers TestPhaseAllocBudgets pins in CI.
type HotLoopResult struct {
	Design            string  `json:"design"`
	ComposeAllocs     uint64  `json:"compose_allocs"`
	WarmupAllocs      uint64  `json:"warmup_allocs"` // first 4096 Predict/Commit steps
	SteadyAllocsPerOp float64 `json:"steady_allocs_per_op"`
	NSPerOp           float64 `json:"ns_per_op"` // machine-dependent
}

// RunnerResult records the serial-vs-parallel comparison of the runner
// engine.  On a single-vCPU host the parallel run is the serial schedule
// plus goroutine overhead, so the speedup is omitted (SpeedupValid=false)
// instead of being reported as a misleading ~0.9× "slowdown".
type RunnerResult struct {
	GOMAXPROCS     int     `json:"gomaxprocs"`
	Jobs           int     `json:"jobs"`
	SerialWallNS   int64   `json:"serial_wall_ns"`
	ParallelWallNS int64   `json:"parallel_wall_ns,omitempty"`
	Speedup        float64 `json:"speedup,omitempty"`
	SpeedupValid   bool    `json:"speedup_valid"`
	Note           string  `json:"note,omitempty"`
}

// Report is the schema-versioned output of one harness run.
type Report struct {
	Schema        string `json:"schema"`
	SchemaVersion int    `json:"schema_version"`
	Quick         bool   `json:"quick"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	Workers       int    `json:"workers"`

	Scenarios []ScenarioResult `json:"scenarios"`
	HotLoop   []HotLoopResult  `json:"hot_loop"`
	Runner    *RunnerResult    `json:"runner,omitempty"`
}

// Run executes the full harness: scenarios, hot-loop budgets, and the
// runner comparison.
func Run(cfg Config) (*Report, error) {
	r := &Report{
		Schema:        Schema,
		SchemaVersion: SchemaVersion,
		Quick:         cfg.Quick,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Workers:       cfg.Workers,
	}
	for _, sc := range Scenarios(cfg.Quick) {
		cfg.logf("scenario %s (%d specs, %d reps)", sc.Name, len(sc.Specs), cfg.reps())
		res, err := RunScenario(sc, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: scenario %s: %w", sc.Name, err)
		}
		r.Scenarios = append(r.Scenarios, res)
	}
	cfg.logf("hot-loop budgets")
	hl, err := HotLoop(cfg)
	if err != nil {
		return nil, err
	}
	r.HotLoop = hl
	cfg.logf("runner serial/parallel")
	rr, err := RunnerComparison(cfg)
	if err != nil {
		return nil, err
	}
	r.Runner = rr
	return r, nil
}

// RunScenario measures one scenario: an unmeasured warm-up repetition (to
// populate the workload memo and geometry cache), then cfg.reps() measured
// repetitions whose deterministic counters must agree exactly and whose
// median wall time is reported.
func RunScenario(sc Scenario, cfg Config) (ScenarioResult, error) {
	opt := runner.Options{Workers: cfg.Workers}
	exec := func() (insts, cycles, misp uint64, wall time.Duration, mallocs uint64, err error) {
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		rs, err := runner.RunSpecs(sc.Specs, opt)
		wall = time.Since(t0)
		runtime.ReadMemStats(&m1)
		if err != nil {
			return 0, 0, 0, 0, 0, err
		}
		mallocs = m1.Mallocs - m0.Mallocs
		for _, res := range rs {
			s := res.Outcome.Stats
			insts += s.Instructions
			cycles += s.Cycles
			misp += s.Mispredicts
		}
		return insts, cycles, misp, wall, mallocs, nil
	}

	// Warm-up repetition: first-touch program compilation and geometry
	// memoization are one-time process costs, not scenario costs.
	if _, _, _, _, _, err := exec(); err != nil {
		return ScenarioResult{}, err
	}

	reps := cfg.reps()
	out := ScenarioResult{Name: sc.Name, Specs: len(sc.Specs), Reps: reps}
	walls := make([]time.Duration, 0, reps)
	allocs := make([]uint64, 0, reps)
	for rep := 0; rep < reps; rep++ {
		insts, cycles, misp, wall, mallocs, err := exec()
		if err != nil {
			return ScenarioResult{}, err
		}
		if rep == 0 {
			out.Insts, out.Cycles, out.Mispredicts = insts, cycles, misp
		} else if insts != out.Insts || cycles != out.Cycles || misp != out.Mispredicts {
			return ScenarioResult{}, fmt.Errorf(
				"determinism violation: rep %d measured insts/cycles/misp %d/%d/%d, rep 0 measured %d/%d/%d",
				rep, insts, cycles, misp, out.Insts, out.Cycles, out.Mispredicts)
		}
		walls = append(walls, wall)
		allocs = append(allocs, mallocs)
	}
	wall := median(walls)
	out.WallNSMedian = wall.Nanoseconds()
	out.Mallocs = medianU64(allocs)
	if out.Insts > 0 {
		out.MallocsPerKInst = float64(out.Mallocs) / float64(out.Insts) * 1000
		out.InstsPerSec = float64(out.Insts) / wall.Seconds()
	}
	if out.Cycles > 0 {
		out.NSPerCycle = float64(wall.Nanoseconds()) / float64(out.Cycles)
	}
	return out, nil
}

// HotLoop measures the per-phase allocation budgets of the bare
// Predict/Commit loop for every Table I design.
func HotLoop(cfg Config) ([]HotLoopResult, error) {
	var out []HotLoopResult
	for _, name := range spec.PresetNames() {
		s := mustPreset(name)
		// The hot loop drives Predict/Commit directly and never touches a
		// workload, but Canonical requires one to resolve.
		s.Workload = "gcc"
		c, err := s.Canonical()
		if err != nil {
			return nil, err
		}
		var composeAllocs uint64
		p, err := buildPipeline(c, &composeAllocs)
		if err != nil {
			return nil, err
		}
		cycle := uint64(0)
		step := func() {
			e, _ := p.Predict(cycle, 0x1000+(cycle%64)*16)
			if e != nil {
				p.Commit(cycle, e)
			}
			cycle++
		}
		warmAllocs := allocsOf(func() {
			for i := 0; i < 4096; i++ {
				step()
			}
		})
		steady := testing.AllocsPerRun(2000, step)
		ops := 20_000
		if cfg.Quick {
			ops = 4_000
		}
		t0 := time.Now()
		for i := 0; i < ops; i++ {
			step()
		}
		ns := float64(time.Since(t0).Nanoseconds()) / float64(ops)
		out = append(out, HotLoopResult{
			Design:            name,
			ComposeAllocs:     composeAllocs,
			WarmupAllocs:      warmAllocs,
			SteadyAllocsPerOp: steady,
			NSPerOp:           ns,
		})
	}
	return out, nil
}

// buildPipeline composes the bare pipeline a canonical spec describes
// (without the host core), recording the construction allocation count.
func buildPipeline(c *spec.RunSpec, allocs *uint64) (*compose.Pipeline, error) {
	opt, err := c.Pipeline.Options()
	if err != nil {
		return nil, err
	}
	hw, err := c.ResolveCore()
	if err != nil {
		return nil, err
	}
	topo, err := compose.ParseTopologyCached(c.Topology)
	if err != nil {
		return nil, err
	}
	var p *compose.Pipeline
	*allocs = allocsOf(func() {
		p, err = compose.New(hw.Fetch, topo, opt)
	})
	return p, err
}

// RunnerComparison times the fig10-small batch on the serial path and, when
// the host has more than one CPU, on the parallel path.
func RunnerComparison(cfg Config) (*RunnerResult, error) {
	sc := Scenarios(cfg.Quick)
	grid := sc[len(sc)-1] // fig10-small
	procs := runtime.GOMAXPROCS(0)
	out := &RunnerResult{GOMAXPROCS: procs, Jobs: len(grid.Specs)}
	timeBatch := func(workers int) (time.Duration, error) {
		t0 := time.Now()
		_, err := runner.RunSpecs(grid.Specs, runner.Options{Workers: workers})
		return time.Since(t0), err
	}
	if _, err := timeBatch(1); err != nil { // warm-up
		return nil, err
	}
	serial, err := timeBatch(1)
	if err != nil {
		return nil, err
	}
	out.SerialWallNS = serial.Nanoseconds()
	if procs == 1 {
		out.SpeedupValid = false
		out.Note = "GOMAXPROCS=1: parallel wall time omitted — the parallel schedule degenerates " +
			"to serial-plus-overhead on this host and its ratio is not a speedup measurement"
		return out, nil
	}
	par, err := timeBatch(procs)
	if err != nil {
		return nil, err
	}
	out.ParallelWallNS = par.Nanoseconds()
	if par > 0 {
		out.Speedup = serial.Seconds() / par.Seconds()
	}
	out.SpeedupValid = true
	return out, nil
}

// allocsOf measures the heap allocations of one call to f, pinned to a
// single P the way testing.AllocsPerRun is.
func allocsOf(f func()) uint64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	f()
	runtime.ReadMemStats(&m1)
	return m1.Mallocs - m0.Mallocs
}

func median(xs []time.Duration) time.Duration {
	s := append([]time.Duration(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

func medianU64(xs []uint64) uint64 {
	s := append([]uint64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// WriteFile writes the report as stable, indented JSON.
func WriteFile(path string, r *Report) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// ReadFile loads a previously written report, validating the schema tag.
func ReadFile(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("bench: %s: schema %q, want %q", path, r.Schema, Schema)
	}
	if r.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("bench: %s: schema version %d, want %d", path, r.SchemaVersion, SchemaVersion)
	}
	return &r, nil
}
