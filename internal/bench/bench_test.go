package bench

import (
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"cobra/internal/runner"
	"cobra/internal/spec"
)

func writeRaw(path, body string) error {
	return os.WriteFile(path, []byte(body), 0o644)
}

// quickScenarios trims the harness scenario set to something a unit test
// can afford: the first Table I design plus a 2-spec slice of the grid.
func quickScenarios(t *testing.T) []Scenario {
	t.Helper()
	all := Scenarios(true)
	grid := all[len(all)-1]
	if grid.Name != "fig10-small" {
		t.Fatalf("last scenario is %s, want fig10-small", grid.Name)
	}
	return []Scenario{
		all[0],
		{Name: grid.Name, Specs: grid.Specs[:2]},
	}
}

// TestBenchPathBitIdentical is the equivalence wall: for every scenario
// spec, the bench path (runner.RunSpecs — what the harness measures) must
// produce counters bit-identical to a direct spec.Exec of the same spec,
// at -j 1 and at -j GOMAXPROCS.  This is what licenses the committed
// BENCH_*.json as a statement about the canonical execution path rather
// than about a private harness fork.
func TestBenchPathBitIdentical(t *testing.T) {
	for _, sc := range quickScenarios(t) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			// Direct path: one spec.Exec per spec.
			var direct []*spec.RunSpec
			want := make([]any, len(sc.Specs))
			for i, s := range sc.Specs {
				c, err := s.Canonical()
				if err != nil {
					t.Fatal(err)
				}
				direct = append(direct, c)
				out, err := spec.Exec(c, spec.Attach{})
				if err != nil {
					t.Fatal(err)
				}
				want[i] = *out.Stats
			}
			for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
				rs, err := runner.RunSpecs(sc.Specs, runner.Options{Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if len(rs) != len(sc.Specs) {
					t.Fatalf("workers=%d: %d results for %d specs", workers, len(rs), len(sc.Specs))
				}
				for i, res := range rs {
					if got := *res.Outcome.Stats; !reflect.DeepEqual(got, want[i]) {
						t.Errorf("workers=%d spec %d (%s on %s): bench-path counters diverge from direct spec.Exec\nbench:  %+v\ndirect: %+v",
							workers, i, direct[i].Design, direct[i].Workload, got, want[i])
					}
				}
			}
		})
	}
}

// TestRunScenarioDeterminism runs one scenario twice through the measuring
// wrapper: deterministic counters must agree across full harness runs.
func TestRunScenarioDeterminism(t *testing.T) {
	sc := quickScenarios(t)[0]
	cfg := Config{Quick: true, Workers: 1, Reps: 2}
	a, err := RunScenario(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Insts != b.Insts || a.Cycles != b.Cycles || a.Mispredicts != b.Mispredicts {
		t.Errorf("counters differ across harness runs: %+v vs %+v", a, b)
	}
	if a.Insts == 0 || a.Cycles == 0 {
		t.Errorf("scenario measured nothing: %+v", a)
	}
}

// TestReportRoundTrip pins the schema: write, read back, compare.
func TestReportRoundTrip(t *testing.T) {
	r := &Report{
		Schema: Schema, SchemaVersion: SchemaVersion,
		GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		GOMAXPROCS: 1, Workers: 1,
		Scenarios: []ScenarioResult{{Name: "x", Specs: 1, Reps: 1, Insts: 10, Cycles: 20}},
		HotLoop:   []HotLoopResult{{Design: "x", SteadyAllocsPerOp: 0}},
		Runner:    &RunnerResult{GOMAXPROCS: 1, Jobs: 1, SerialWallNS: 5, SpeedupValid: false},
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := WriteFile(path, r); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, back) {
		t.Errorf("round trip diverged:\nwrote: %+v\nread:  %+v", r, back)
	}
}

// TestReadFileRejectsForeignSchema ensures stale or foreign JSON fails
// loudly instead of comparing garbage.
func TestReadFileRejectsForeignSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	for _, body := range []string{
		`{"schema":"other","schema_version":1}`,
		`{"schema":"cobra-bench","schema_version":99}`,
		`not json`,
	} {
		if err := writeRaw(path, body); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadFile(path); err == nil {
			t.Errorf("ReadFile accepted %q", body)
		}
	}
}

// TestCompareGates exercises each regression gate.
func TestCompareGates(t *testing.T) {
	base := func() *Report {
		return &Report{
			Schema: Schema, SchemaVersion: SchemaVersion,
			Scenarios: []ScenarioResult{{
				Name: "s", Insts: 1000, Cycles: 2000, Mispredicts: 30,
				MallocsPerKInst: 1.0, InstsPerSec: 1e6,
			}},
			HotLoop: []HotLoopResult{{
				Design: "d", ComposeAllocs: 200, WarmupAllocs: 250, SteadyAllocsPerOp: 0,
			}},
		}
	}
	if regs := Compare(base(), base(), CompareOptions{}); len(regs) != 0 {
		t.Fatalf("identical reports regressed: %v", regs)
	}

	cases := []struct {
		name   string
		mutate func(r *Report)
		opt    CompareOptions
		want   bool
	}{
		{"cycles changed", func(r *Report) { r.Scenarios[0].Cycles++ }, CompareOptions{}, true},
		{"insts changed", func(r *Report) { r.Scenarios[0].Insts-- }, CompareOptions{}, true},
		{"mispredicts changed", func(r *Report) { r.Scenarios[0].Mispredicts++ }, CompareOptions{}, true},
		{"alloc rate doubled", func(r *Report) { r.Scenarios[0].MallocsPerKInst = 2.0 }, CompareOptions{}, true},
		{"alloc rate within tol", func(r *Report) { r.Scenarios[0].MallocsPerKInst = 1.05 }, CompareOptions{}, false},
		{"scenario dropped", func(r *Report) { r.Scenarios = nil }, CompareOptions{}, true},
		{"steady allocs grew", func(r *Report) { r.HotLoop[0].SteadyAllocsPerOp = 1 }, CompareOptions{}, true},
		{"warmup allocs blew up", func(r *Report) { r.HotLoop[0].WarmupAllocs = 1000 }, CompareOptions{}, true},
		{"timing ignored by default", func(r *Report) { r.Scenarios[0].InstsPerSec = 1 }, CompareOptions{}, false},
		{"timing gated when asked", func(r *Report) { r.Scenarios[0].InstsPerSec = 1 }, CompareOptions{TimingTol: 0.2}, true},
		{"quick mode mismatch", func(r *Report) { r.Quick = true }, CompareOptions{}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := base()
			tc.mutate(n)
			regs := Compare(base(), n, tc.opt)
			if got := len(regs) > 0; got != tc.want {
				t.Errorf("regressions=%v, want regression=%v (%v)", regs, tc.want, regs)
			}
		})
	}
}

// TestHotLoopZeroSteadyState is the acceptance number: the committed
// trajectory claims steady-state 0 allocs/op for every Table I design, and
// the harness must keep measuring that on this toolchain.
func TestHotLoopZeroSteadyState(t *testing.T) {
	hl, err := HotLoop(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(hl) != len(spec.PresetNames()) {
		t.Fatalf("%d hot-loop rows, want %d", len(hl), len(spec.PresetNames()))
	}
	for _, h := range hl {
		if h.SteadyAllocsPerOp != 0 {
			t.Errorf("%s: steady-state %.2f allocs/op, want 0", h.Design, h.SteadyAllocsPerOp)
		}
		if h.WarmupAllocs == 0 || h.ComposeAllocs == 0 {
			t.Errorf("%s: implausible zero construction costs: %+v", h.Design, h)
		}
	}
}
