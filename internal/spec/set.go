package spec

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// SetVersion is the current Set schema version; like RunSpec's Version it is
// part of the canonical JSON, so a bump invalidates every Set digest.
const SetVersion = 1

// Axis varies one RunSpec field over a list of values.  Expansion is the
// ordered cross product of a Set's axes: the first axis is the slowest
// (outermost) index, the last the fastest, which is exactly the loop nest a
// hand-written sweep would use.
type Axis struct {
	// Field names the varied dimension.  Known fields: design (a preset
	// name, expanding to its topology and pipeline parameters), topology,
	// workload, host, policy, seed, insts, warmup, ghist, serialized, sfb,
	// paranoid.
	Field string `json:"field"`
	// Values are the points along the axis, applied to the base spec as
	// strings and parsed per field (seed/insts/warmup as unsigned integers,
	// serialized/sfb/paranoid as booleans).
	Values []string `json:"values"`
	// Names, when present, must parallel Values and overrides the expanded
	// point's informational Design name — how a sweep labels "the TAGE-L
	// topology with 512 rows" tage-l-512 without inventing a field for it.
	Names []string `json:"names,omitempty"`
}

// UnmarshalJSON accepts axis values as any JSON scalar — string, number, or
// boolean — normalizing each to its string form.  Hand-written grids (and the
// YAML fleet files that lower onto them) naturally write `values: [512, 1024]`;
// forcing authors to quote every number would be pure friction.  Unknown keys
// are rejected, matching ParseSet's strictness.
func (a *Axis) UnmarshalJSON(data []byte) error {
	var raw struct {
		Field  string   `json:"field"`
		Values []any    `json:"values"`
		Names  []string `json:"names"`
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return err
	}
	a.Field, a.Names, a.Values = raw.Field, raw.Names, nil
	for _, v := range raw.Values {
		switch x := v.(type) {
		case string:
			a.Values = append(a.Values, x)
		case json.Number:
			a.Values = append(a.Values, x.String())
		case bool:
			a.Values = append(a.Values, strconv.FormatBool(x))
		default:
			return fmt.Errorf("spec: axis %q value %v is not a scalar", raw.Field, v)
		}
	}
	return nil
}

// Set is a named, canonicalizable grid over RunSpec fields: one base spec
// plus axes that vary it.  It is the shared data model behind cobra-sweep's
// matrices and cobra-compose's sweep services — a Set serializes, digests,
// and expands identically everywhere, so "the sweep I ran" is as
// content-addressable as "the run I ran".
type Set struct {
	Version int    `json:"version"`
	Name    string `json:"name,omitempty"`
	Base    RunSpec `json:"base"`
	Axes    []Axis  `json:"axes,omitempty"`
}

// setFields maps each axis field to its application on a point.  Returning
// an error rejects the value during Canonicalize, before anything runs.
var setFields = map[string]func(s *RunSpec, v string) error{
	"design": func(s *RunSpec, v string) error {
		p, err := Preset(v)
		if err != nil {
			return err
		}
		s.Design, s.Topology, s.Pipeline = p.Design, p.Topology, p.Pipeline
		return nil
	},
	"topology": func(s *RunSpec, v string) error { s.Topology = v; return nil },
	"workload": func(s *RunSpec, v string) error { s.Workload = v; return nil },
	"host":     func(s *RunSpec, v string) error { s.Host = v; return nil },
	"policy":   func(s *RunSpec, v string) error { s.Pipeline.GHRPolicy = v; return nil },
	"seed":     func(s *RunSpec, v string) error { return setUint64(&s.Seed, v) },
	"insts":    func(s *RunSpec, v string) error { return setUint64(&s.Insts, v) },
	"warmup":   func(s *RunSpec, v string) error { return setUint64(&s.Warmup, v) },
	"ghist": func(s *RunSpec, v string) error {
		n, err := strconv.ParseUint(v, 10, 32)
		if err != nil {
			return fmt.Errorf("spec: bad ghist value %q: %w", v, err)
		}
		s.Pipeline.GHistBits = uint(n)
		return nil
	},
	"serialized": func(s *RunSpec, v string) error { return setBool(&s.SerializedFetch, v) },
	"sfb":        func(s *RunSpec, v string) error { return setBool(&s.SFB, v) },
	"paranoid":   func(s *RunSpec, v string) error { return setBool(&s.Paranoid, v) },
}

func setUint64(dst *uint64, v string) error {
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return fmt.Errorf("spec: bad numeric axis value %q: %w", v, err)
	}
	*dst = n
	return nil
}

func setBool(dst *bool, v string) error {
	b, err := strconv.ParseBool(v)
	if err != nil {
		return fmt.Errorf("spec: bad boolean axis value %q: %w", v, err)
	}
	*dst = b
	return nil
}

// SetFieldNames lists the axis fields Expand understands, sorted.
func SetFieldNames() []string {
	return []string{"design", "ghist", "host", "insts", "paranoid", "policy",
		"seed", "serialized", "sfb", "topology", "warmup", "workload"}
}

// Len returns the number of points the set expands to (the product of the
// axis lengths; 1 for an axis-free set).
func (g *Set) Len() int {
	n := 1
	for _, a := range g.Axes {
		n *= len(a.Values)
	}
	return n
}

// Coords returns the per-axis value indices of expansion point i — the
// inverse of the row-major expansion order, for callers that label cells by
// their grid position.
func (g *Set) Coords(i int) []int {
	c := make([]int, len(g.Axes))
	for a := len(g.Axes) - 1; a >= 0; a-- {
		n := len(g.Axes[a].Values)
		c[a] = i % n
		i /= n
	}
	return c
}

// Canonicalize rewrites the set in place into its canonical form — version
// explicit, axis fields lower-cased, values trimmed — and validates it: every
// axis field known and non-empty, Names (when present) parallel to Values,
// and every expanded point canonicalizable.  A canonical set is therefore a
// runnable one, and equal grids digest equally.
func (g *Set) Canonicalize() error {
	if g.Version == 0 {
		g.Version = SetVersion
	}
	if g.Version != SetVersion {
		return fmt.Errorf("spec: unsupported set version %d (this build speaks %d)", g.Version, SetVersion)
	}
	for i := range g.Axes {
		a := &g.Axes[i]
		a.Field = strings.ToLower(strings.TrimSpace(a.Field))
		if _, ok := setFields[a.Field]; !ok {
			return fmt.Errorf("spec: unknown axis field %q (have %s)",
				a.Field, strings.Join(SetFieldNames(), ", "))
		}
		if len(a.Values) == 0 {
			return fmt.Errorf("spec: axis %q has no values", a.Field)
		}
		if a.Names != nil && len(a.Names) != len(a.Values) {
			return fmt.Errorf("spec: axis %q has %d names for %d values",
				a.Field, len(a.Names), len(a.Values))
		}
		for j, v := range a.Values {
			a.Values[j] = strings.TrimSpace(v)
		}
		for j, n := range a.Names {
			a.Names[j] = strings.TrimSpace(n)
		}
	}
	// Validation is expansion: every point must canonicalize.
	_, err := g.expand()
	return err
}

// Canonical returns the canonicalized copy, leaving the receiver untouched.
func (g *Set) Canonical() (*Set, error) {
	c := g.Clone()
	if err := c.Canonicalize(); err != nil {
		return nil, err
	}
	return c, nil
}

// Clone returns a deep copy.
func (g *Set) Clone() *Set {
	c := *g
	c.Base = *g.Base.Clone()
	c.Axes = make([]Axis, len(g.Axes))
	for i, a := range g.Axes {
		c.Axes[i] = Axis{
			Field:  a.Field,
			Values: append([]string(nil), a.Values...),
		}
		if a.Names != nil {
			c.Axes[i].Names = append([]string(nil), a.Names...)
		}
	}
	return &c
}

// Digest returns the content address of the grid: "sha256:<hex>" over the
// canonical form's JSON.  Two sets with equal digests expand to the same
// ordered list of RunSpec digests, so the set digest is a safe skip key for
// whole-sweep caching.
func (g *Set) Digest() (string, error) {
	c, err := g.Canonical()
	if err != nil {
		return "", err
	}
	raw, err := json.Marshal(c)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("sha256:%x", sha256.Sum256(raw)), nil
}

// Expand materializes the grid: the ordered cross product of the axes
// applied to the base spec, each point canonical.  The receiver is not
// mutated.
func (g *Set) Expand() ([]*RunSpec, error) {
	c, err := g.Canonical()
	if err != nil {
		return nil, err
	}
	return c.expand()
}

// expand materializes an already-normalized set.
func (g *Set) expand() ([]*RunSpec, error) {
	n := g.Len()
	out := make([]*RunSpec, n)
	for i := 0; i < n; i++ {
		s := g.Base.Clone()
		coords := g.Coords(i)
		for ai := range g.Axes {
			a := g.Axes[ai]
			apply, ok := setFields[a.Field]
			if !ok {
				return nil, fmt.Errorf("spec: unknown axis field %q", a.Field)
			}
			if err := apply(s, a.Values[coords[ai]]); err != nil {
				return nil, err
			}
			if a.Names != nil {
				s.Design = a.Names[coords[ai]]
			}
		}
		if err := s.Canonicalize(); err != nil {
			return nil, fmt.Errorf("spec: set point %d: %w", i, err)
		}
		out[i] = s
	}
	return out, nil
}

// ParseSet decodes a Set from JSON, rejecting unknown fields.
func ParseSet(data []byte) (*Set, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var g Set
	if err := dec.Decode(&g); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return &g, nil
}
