package spec

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden fixtures in testdata/")

// fixtureSpec exercises every serializable field class: explicit pipeline
// geometry, a pinned workload, budgets, host toggles, a fault plan with
// deliberately unsorted/duplicated kinds, and observer config.
func fixtureSpec() *RunSpec {
	return &RunSpec{
		Design:   "b2",
		Topology: "GTAG3 > BTB2 > BIM2",
		Pipeline: Pipeline{GHistBits: 16, GHRPolicy: "replay"},
		Workload: "fib",
		Seed:     7,
		Insts:    60_000,
		Warmup:   1_000,
		Host:     "inorder",
		Paranoid: true,
		Faults: &FaultPlan{
			Seed:       3,
			Period:     10_000,
			Kinds:      []string{"drop-update", "corrupt-meta", "drop-update"},
			Components: []string{"btb2", "GTAG3"},
		},
		Observe: Observe{Events: true, EventsBuf: 1024, Attribution: true},
	}
}

// TestGoldenFixture freezes the v1 canonical form: the committed JSON and
// digest must be reproduced exactly.  If this fails because you changed the
// RunSpec schema (field added, renamed, reordered, retyped) or the meaning of
// canonicalization, bump Version and regenerate with -update; silently
// reshaping the schema would let stale cached results collide with new specs.
func TestGoldenFixture(t *testing.T) {
	s, err := fixtureSpec().Canonical()
	if err != nil {
		t.Fatalf("Canonical: %v", err)
	}
	got, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	digest, err := s.Digest()
	if err != nil {
		t.Fatalf("Digest: %v", err)
	}
	jsonPath := filepath.Join("testdata", "runspec_v1.json")
	digestPath := filepath.Join("testdata", "runspec_v1.digest")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(jsonPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(digestPath, []byte(digest+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (digest %s)", jsonPath, digest)
		return
	}
	want, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("canonical JSON drifted from the committed v%d fixture.\n"+
			"If the schema changed, bump spec.Version and regenerate with -update.\ngot:\n%s\nwant:\n%s",
			Version, got, want)
	}
	wantDigest, err := os.ReadFile(digestPath)
	if err != nil {
		t.Fatal(err)
	}
	if digest != string(bytes.TrimSpace(wantDigest)) {
		t.Errorf("digest drifted: got %s want %s", digest, bytes.TrimSpace(wantDigest))
	}
}

// TestGoldenRoundTrip: fixture JSON → Parse → Canonicalize → identical JSON
// and digest (parsing loses nothing; canonicalization is idempotent).
func TestGoldenRoundTrip(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "runspec_v1.json"))
	if err != nil {
		t.Skipf("no fixture yet: %v", err)
	}
	s, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := s.Canonicalize(); err != nil {
		t.Fatalf("Canonicalize: %v", err)
	}
	got, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	if !bytes.Equal(got, data) {
		t.Errorf("round trip not identical:\ngot:\n%s\nwant:\n%s", got, data)
	}
}

func TestCanonicalizeIdempotent(t *testing.T) {
	s := fixtureSpec()
	if err := s.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	d1, err := s.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	d2, err := s.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Errorf("second canonicalization moved the digest: %s -> %s", d1, d2)
	}
}

// TestDefaultsDigestEqual: leaving defaults implicit and spelling them out
// must address the same cache entry.
func TestDefaultsDigestEqual(t *testing.T) {
	implicit := &RunSpec{Topology: "BIM2", Workload: "fib"}
	explicit := &RunSpec{
		Version:  Version,
		Topology: "BIM2",
		Pipeline: Pipeline{GHistBits: 64, LocalEntries: 256, LocalHistBits: 32,
			PathBits: 16, HFEntries: 32, GHRPolicy: "repair"},
		Workload: "fib",
		Seed:     DefaultSeed,
		Insts:    DefaultInsts,
		Host:     "boom",
	}
	d1, err := implicit.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := explicit.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	dig1, _ := d1.Digest()
	dig2, _ := d2.Digest()
	if dig1 != dig2 {
		t.Errorf("implicit and explicit defaults digest differently:\n%s\n%s", dig1, dig2)
	}
}

func TestFaultPlanNormalization(t *testing.T) {
	s := fixtureSpec()
	if err := s.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	if got := s.Faults.Kinds; len(got) != 2 || got[0] > got[1] {
		t.Errorf("fault kinds not sorted/deduplicated: %v", got)
	}
	for i, c := range s.Faults.Components {
		if c != "BTB2" && c != "GTAG3" {
			t.Errorf("component %d not normalized: %q", i, c)
		}
	}
	// An inert plan (period 0) canonicalizes away entirely.
	inert := &RunSpec{Topology: "BIM2", Workload: "fib", Faults: &FaultPlan{Seed: 9}}
	if err := inert.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	if inert.Faults != nil {
		t.Errorf("inert fault plan survived canonicalization: %+v", inert.Faults)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"topology":"BIM2","workload":"fib","wrokload":"typo"}`)); err == nil {
		t.Error("Parse accepted an unknown field")
	}
}

func TestVersionGate(t *testing.T) {
	s := &RunSpec{Version: Version + 1, Topology: "BIM2", Workload: "fib"}
	if err := s.Canonicalize(); err == nil {
		t.Errorf("Canonicalize accepted schema version %d", Version+1)
	}
}

func TestWorkloadHashMismatchRejected(t *testing.T) {
	s := &RunSpec{Topology: "BIM2", Workload: "fib",
		WorkloadHash: "sha256:0000000000000000000000000000000000000000000000000000000000000000"}
	if err := s.Canonicalize(); err == nil {
		t.Error("Canonicalize accepted a stale workload hash")
	}
}

func TestUnknownWorkloadRejected(t *testing.T) {
	s := &RunSpec{Topology: "BIM2", Workload: "no-such-workload"}
	if err := s.Canonicalize(); err == nil {
		t.Error("Canonicalize accepted an unknown workload")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := fixtureSpec()
	if err := s.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	c.Faults.Kinds[0] = "mutated"
	c.Pipeline.GHistBits = 1
	if s.Faults.Kinds[0] == "mutated" || s.Pipeline.GHistBits == 1 {
		t.Error("Clone shares state with the original")
	}
}

func TestPresetsCanonicalizeDistinctly(t *testing.T) {
	seen := map[string]string{}
	for _, name := range PresetNames() {
		p, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		p.Workload = "fib"
		if err := p.Canonicalize(); err != nil {
			t.Fatalf("Preset(%q) does not canonicalize: %v", name, err)
		}
		d, err := p.Digest()
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[d]; dup {
			t.Errorf("presets %q and %q share digest %s", prev, name, d)
		}
		seen[d] = name
	}
}

// TestDigestStableAcrossProcessShape guards the workload fingerprint against
// pointer-rendering regressions: hashing the same workload twice through
// fresh builds must agree (interpreted kernels rebuild per Get).
func TestFingerprintStable(t *testing.T) {
	a := &RunSpec{Topology: "BIM2", Workload: "fib"}
	b := &RunSpec{Topology: "BIM2", Workload: "fib"}
	ca, err := a.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if ca.WorkloadHash != cb.WorkloadHash {
		t.Errorf("workload hash unstable: %s vs %s", ca.WorkloadHash, cb.WorkloadHash)
	}
}
