package spec

import (
	"encoding/json"
	"strings"
	"testing"
)

func testSet() *Set {
	return &Set{
		Name: "t",
		Base: RunSpec{Workload: "gcc", Insts: 1000},
		Axes: []Axis{
			{Field: "design", Values: []string{"tourney", "b2"}},
			{Field: "workload", Values: []string{"gcc", "leela", "mcf"}},
		},
	}
}

// Expansion is the row-major cross product: first axis outermost, last axis
// fastest — the loop nest a hand-written sweep uses.
func TestSetExpandOrder(t *testing.T) {
	specs, err := testSet().Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 6 {
		t.Fatalf("expanded %d points, want 6", len(specs))
	}
	want := []struct{ design, workload string }{
		{"tourney", "gcc"}, {"tourney", "leela"}, {"tourney", "mcf"},
		{"b2", "gcc"}, {"b2", "leela"}, {"b2", "mcf"},
	}
	for i, w := range want {
		if specs[i].Design != w.design || specs[i].Workload != w.workload {
			t.Errorf("point %d = (%s, %s), want (%s, %s)",
				i, specs[i].Design, specs[i].Workload, w.design, w.workload)
		}
		if specs[i].Insts != 1000 {
			t.Errorf("point %d lost the base instruction budget: %d", i, specs[i].Insts)
		}
	}
}

// Coords inverts the expansion order.
func TestSetCoords(t *testing.T) {
	g := testSet()
	if got := g.Coords(0); got[0] != 0 || got[1] != 0 {
		t.Errorf("Coords(0) = %v", got)
	}
	if got := g.Coords(5); got[0] != 1 || got[1] != 2 {
		t.Errorf("Coords(5) = %v", got)
	}
	if g.Len() != 6 {
		t.Errorf("Len = %d", g.Len())
	}
}

// Every expanded point is canonical: defaults explicit, workload hash
// pinned, digestable.
func TestSetExpandCanonical(t *testing.T) {
	specs, err := testSet().Expand()
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range specs {
		if s.WorkloadHash == "" || s.Version != Version || s.Seed == 0 {
			t.Errorf("point %d not canonical: %+v", i, s)
		}
		if _, err := s.Digest(); err != nil {
			t.Errorf("point %d digest: %v", i, err)
		}
	}
}

// The set digest is stable across equivalent spellings (whitespace, implicit
// version) and sensitive to any value change.
func TestSetDigest(t *testing.T) {
	a, err := testSet().Digest()
	if err != nil {
		t.Fatal(err)
	}
	sloppy := testSet()
	sloppy.Axes[0].Field = " Design "
	sloppy.Axes[1].Values = []string{"gcc ", " leela", "mcf"}
	b, err := sloppy.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("equivalent sets digest differently:\n%s\n%s", a, b)
	}
	changed := testSet()
	changed.Base.Insts = 2000
	c, err := changed.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("changing the base budget did not change the set digest")
	}
	if !strings.HasPrefix(a, "sha256:") {
		t.Errorf("digest %q has no sha256: prefix", a)
	}
}

// Names override the informational design label per value.
func TestSetAxisNames(t *testing.T) {
	g := &Set{
		Base: RunSpec{Workload: "gcc", Insts: 1000},
		Axes: []Axis{{
			Field:  "topology",
			Values: []string{"TAGE3(512) > BTB2 > BIM2", "TAGE3(1024) > BTB2 > BIM2"},
			Names:  []string{"tage-512", "tage-1024"},
		}},
	}
	specs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].Design != "tage-512" || specs[1].Design != "tage-1024" {
		t.Errorf("names not applied: %q, %q", specs[0].Design, specs[1].Design)
	}
}

func TestSetRejects(t *testing.T) {
	cases := map[string]*Set{
		"unknown field": {Base: RunSpec{Workload: "gcc"},
			Axes: []Axis{{Field: "flux", Values: []string{"1"}}}},
		"empty axis": {Base: RunSpec{Workload: "gcc"},
			Axes: []Axis{{Field: "seed"}}},
		"names mismatch": {Base: RunSpec{Workload: "gcc"},
			Axes: []Axis{{Field: "seed", Values: []string{"1", "2"}, Names: []string{"a"}}}},
		"bad numeric": {Base: RunSpec{Workload: "gcc"},
			Axes: []Axis{{Field: "insts", Values: []string{"many"}}}},
		"bad point": {Base: RunSpec{Workload: "gcc"},
			Axes: []Axis{{Field: "topology", Values: []string{"NOT A TOPOLOGY ("}}}},
		"bad version": {Version: 99, Base: RunSpec{Workload: "gcc"}},
	}
	for name, g := range cases {
		if err := g.Canonicalize(); err == nil {
			t.Errorf("%s: Canonicalize accepted %+v", name, g)
		}
	}
}

// Expand and Canonicalize leave the receiver untouched (Expand) or converge
// (Canonicalize twice = once).
func TestSetCanonicalizeIdempotent(t *testing.T) {
	g := testSet()
	if err := g.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	d1, err := g.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	d2, err := g.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Errorf("canonicalize not idempotent: %s != %s", d1, d2)
	}
}

// A round-trip through JSON preserves the digest, and unknown fields are
// rejected like RunSpec's Parse.
func TestParseSet(t *testing.T) {
	g, err := testSet().Canonical()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSet(raw)
	if err != nil {
		t.Fatal(err)
	}
	d1, _ := g.Digest()
	d2, _ := back.Digest()
	if d1 != d2 {
		t.Errorf("round-trip changed digest: %s != %s", d1, d2)
	}
	if _, err := ParseSet([]byte(`{"base":{},"banana":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
}
