package spec

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"time"

	"cobra/internal/compose"
	"cobra/internal/faults"
	"cobra/internal/interval"
	"cobra/internal/obs"
	"cobra/internal/pred"
	"cobra/internal/stats"
	"cobra/internal/uarch"
	"cobra/internal/workloads"
)

// Attach carries the process-local, non-serializable hooks a caller may wire
// into one execution: live sinks and decorators that describe *how this
// process watches the run*, never *what the run is* — which is why they live
// here and not in the RunSpec (and therefore never perturb the digest).
type Attach struct {
	// Observer receives the cycle-level event stream.  When nil and the
	// spec's Observe.Events is set, Exec creates a ring-buffered tracer and
	// returns its contents in the Outcome.
	Observer obs.Observer
	// Profile, when non-nil, accumulates per-PC misprediction attribution
	// into the caller's profile; otherwise Observe.Attribution makes Exec
	// allocate one and return it.
	Profile *obs.BranchProfile
	// Metrics, when non-nil, receives live cycle/instruction telemetry.
	Metrics *obs.Metrics
	// Ctx, when non-nil, cancels the run cooperatively; the spec's own
	// TimeoutMS is layered on top.
	Ctx context.Context
	// Wrap decorates every instantiated sub-component (composed with the
	// spec's fault plan when both are present; the caller's wrapper runs
	// innermost).
	Wrap func(pred.Subcomponent) pred.Subcomponent
	// OnFault observes every fault the spec's plan injects.
	OnFault func(faults.Record)
	// Span, when non-nil, is the parent wall-clock span under which Exec
	// records its phase spans (canonicalize, workload, compose, warmup,
	// simulate) on the "exec" track — the request-tracing hook the serving
	// stack threads through the runner.  nil skips span recording; the
	// Timings breakdown is measured either way.
	Span *obs.ActiveSpan
	// Progress, when non-nil, receives live phase transitions and
	// cycle/instruction totals for this one run — the feed behind the serving
	// stack's GET /v1/runs/{id}/progress stream.  Exec publishes the phase at
	// each boundary; the core publishes totals on its periodic flush.
	Progress *obs.RunProgress
	// Intervals, when non-nil, is the caller's windowed-telemetry recorder
	// (so live readers like the SSE progress feed can watch windows close);
	// otherwise Observe.IntervalInsts makes Exec allocate one and return its
	// snapshot in the Outcome.
	Intervals *interval.Recorder
}

// Timings is the wall-clock phase breakdown of one Exec call, in
// milliseconds.  Pure telemetry: it never enters the spec digest, and cached
// results replay the timings of the original computation.
type Timings struct {
	CanonicalizeMS float64 `json:"canonicalize_ms"`
	WorkloadMS     float64 `json:"workload_ms"`
	ComposeMS      float64 `json:"compose_ms"`
	WarmupMS       float64 `json:"warmup_ms,omitempty"`
	SimulateMS     float64 `json:"simulate_ms"`
	TotalMS        float64 `json:"total_ms"`
}

// Outcome is everything one execution produced.
type Outcome struct {
	Stats    *stats.Sim
	Pipeline *compose.Pipeline
	// Events holds the captured cycle-level trace when the spec asked for
	// one (Observe.Events) and the caller did not supply its own Observer.
	Events []obs.Event
	// EventsTotal counts every emitted event; when it exceeds len(Events)
	// the ring overflowed and only the newest records were kept.
	EventsTotal uint64
	// Profile is the per-PC attribution profile: the caller's, or a fresh
	// one when Observe.Attribution asked for it.
	Profile *obs.BranchProfile
	// Intervals is the windowed-telemetry snapshot when the spec asked for
	// one (Observe.IntervalInsts > 0) or the caller attached a recorder.
	Intervals *interval.Set
	// Timings is the wall-clock phase breakdown of this execution.
	Timings Timings
}

// geometryFor resolves the canonical spec's pipeline geometry — parsed
// topology, base compose options, resolved host config — through the
// process-wide compose geometry memo.  The key is the digest prefix of the
// geometry-bearing subset of the spec (topology, pipeline parameters, host
// core, fetch toggles), so a sweep varying only seed/workload/instruction
// budget hits one shared entry instead of re-parsing and re-validating per
// run.  c must already be canonical; the memoized value is immutable and
// shared across goroutines (per-run hooks are attached to a copy of Opt).
func geometryFor(c *RunSpec) (*compose.Geometry, error) {
	g := RunSpec{
		Version:         c.Version,
		Topology:        c.Topology,
		Pipeline:        c.Pipeline,
		Host:            c.Host,
		Core:            c.Core,
		SerializedFetch: c.SerializedFetch,
		SFB:             c.SFB,
	}
	raw, err := json.Marshal(&g)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(raw)
	key := fmt.Sprintf("geom\x00%x", sum[:16])
	return compose.GeometryFor(key, func() (*compose.Geometry, error) {
		opt, err := c.Pipeline.Options()
		if err != nil {
			return nil, err
		}
		cfg, err := c.ResolveCore()
		if err != nil {
			return nil, err
		}
		topo, err := compose.ParseTopology(c.Topology)
		if err != nil {
			return nil, err
		}
		return &compose.Geometry{Topo: topo, Opt: opt, Aux: cfg}, nil
	})
}

// Exec runs the simulation a spec describes.  It is the one execution path
// behind cobra.Run, runner.RunSpecs, and cobra-serve: canonicalize, compose
// the pipeline (with the fault plan and observer wired in), build the
// workload, assemble the host core, run warmup + measured instructions, and
// enforce the paranoid-mode invariant contract.
func Exec(s *RunSpec, at Attach) (*Outcome, error) {
	begin := time.Now()
	var tm Timings
	// endPhase closes one instrumented phase: it stamps the phase's wall
	// time into the breakdown and records the span (with the error, if the
	// phase failed).
	endPhase := func(sp *obs.ActiveSpan, out *float64, t0 time.Time, err error) {
		*out = time.Since(t0).Seconds() * 1e3
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		sp.End()
	}

	at.Progress.SetPhase(obs.PhaseCanonicalize)
	sp := at.Span.Child("exec", "canonicalize")
	t0 := time.Now()
	c, err := s.Canonical()
	endPhase(sp, &tm.CanonicalizeMS, t0, err)
	if err != nil {
		return nil, err
	}

	at.Progress.SetPhase(obs.PhaseCompose)
	sp = at.Span.Child("exec", "compose")
	t0 = time.Now()
	geo, err := geometryFor(c)
	if err != nil {
		endPhase(sp, &tm.ComposeMS, t0, err)
		return nil, err
	}
	opt := geo.Opt // copy: per-run hooks must not leak into the shared memo
	opt.Paranoid = c.Paranoid
	opt.Wrap = at.Wrap
	if plan, perr := c.Faults.Plan(); perr != nil {
		endPhase(sp, &tm.ComposeMS, t0, perr)
		return nil, perr
	} else if plan != nil {
		plan.OnFault = at.OnFault
		if inner := at.Wrap; inner != nil {
			opt.Wrap = func(sc pred.Subcomponent) pred.Subcomponent { return plan.Wrap(inner(sc)) }
		} else {
			opt.Wrap = plan.Wrap
		}
	}

	var tracer *obs.Tracer
	opt.Observer = at.Observer
	if opt.Observer == nil && c.Observe.Events {
		tracer = obs.NewTracer(c.Observe.EventsBuf)
		opt.Observer = tracer
	}

	cfg := geo.Aux.(uarch.Config)
	topo := geo.Topo
	name := c.Design
	if name == "" {
		name = c.Topology
	}
	bp, err := compose.New(cfg.Fetch, topo, opt)
	if err != nil {
		err = fmt.Errorf("spec: composing %s: %w", name, err)
		endPhase(sp, &tm.ComposeMS, t0, err)
		return nil, err
	}
	endPhase(sp, &tm.ComposeMS, t0, nil)

	at.Progress.SetPhase(obs.PhaseWorkload)
	sp = at.Span.Child("exec", "workload")
	t0 = time.Now()
	prog, err := workloads.Get(c.Workload)
	endPhase(sp, &tm.WorkloadMS, t0, err)
	if err != nil {
		return nil, err
	}

	core := uarch.NewCore(cfg, bp, prog, c.Seed)
	prof := at.Profile
	if prof == nil && c.Observe.Attribution {
		prof = obs.NewBranchProfile()
	}
	if prof != nil {
		core.SetBranchProfile(prof)
	}
	if at.Metrics != nil {
		core.SetMetrics(at.Metrics)
	}
	if at.Progress != nil {
		core.SetProgress(at.Progress)
	}
	ivl := at.Intervals
	if ivl != nil {
		ivl.Reset() // a caller-owned recorder may carry a previous attempt
	} else if c.Observe.IntervalInsts > 0 {
		ivl = interval.NewRecorder(c.Observe.IntervalInsts)
	}
	if ivl != nil {
		core.SetIntervals(ivl)
	}

	ctx := at.Ctx
	if d := c.Timeout(); d > 0 {
		base := ctx
		if base == nil {
			base = context.Background()
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(base, d)
		defer cancel()
	}
	if ctx != nil {
		core.SetContext(ctx)
	}

	if c.Warmup > 0 {
		at.Progress.SetPhase(obs.PhaseWarmup)
		at.Progress.SetTarget(c.Warmup)
		sp = at.Span.Child("exec", "warmup")
		t0 = time.Now()
		core.Run(c.Warmup)
		if ctx != nil && ctx.Err() != nil {
			err := fmt.Errorf("spec: %s on %s: %w (during warmup)", name, c.Workload, ctx.Err())
			endPhase(sp, &tm.WarmupMS, t0, err)
			return nil, err
		}
		core.ResetStats()
		endPhase(sp, &tm.WarmupMS, t0, nil)
	}
	at.Progress.SetPhase(obs.PhaseSimulate)
	at.Progress.SetTarget(c.Insts)
	sp = at.Span.Child("exec", "simulate")
	t0 = time.Now()
	res := core.Run(c.Insts)
	if ctx != nil && ctx.Err() != nil {
		err := fmt.Errorf("spec: %s on %s: %w (after %d committed instructions)",
			name, c.Workload, ctx.Err(), res.Instructions)
		endPhase(sp, &tm.SimulateMS, t0, err)
		return nil, err
	}
	if n := bp.ViolationCount(); n > 0 {
		err := fmt.Errorf("spec: %d invariant violations; first: %w", n, bp.Violations()[0])
		endPhase(sp, &tm.SimulateMS, t0, err)
		return nil, err
	}
	sp.SetAttr("cycles", fmt.Sprintf("%d", res.Cycles))
	sp.SetAttr("instructions", fmt.Sprintf("%d", res.Instructions))
	endPhase(sp, &tm.SimulateMS, t0, nil)
	tm.TotalMS = time.Since(begin).Seconds() * 1e3

	out := &Outcome{Stats: res, Pipeline: bp, Profile: prof, Timings: tm}
	if tracer != nil {
		out.Events = tracer.Events()
		out.EventsTotal = tracer.Total()
	}
	if ivl != nil {
		out.Intervals = ivl.Set()
	}
	return out, nil
}
