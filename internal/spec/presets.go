package spec

import "fmt"

// Preset returns the named Table I design point as a (non-canonicalized)
// spec: "tage-l", "b2", or "tourney".  This is the single source of truth
// for the paper's evaluated designs; the cobra package's Design constructors
// and the CLI -design flag both derive from it.
func Preset(name string) (*RunSpec, error) {
	switch name {
	case "tage-l":
		// 7-table TAGE with a loop corrector over a BTB + bimodal base and a
		// single-cycle micro-BTB; 64-bit global history.
		return &RunSpec{
			Design:   "tage-l",
			Topology: "LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1",
			Pipeline: Pipeline{GHistBits: 64},
		}, nil
	case "b2":
		// Original-BOOM-like: one partially tagged global table over a BTB +
		// bimodal base; 16-bit global history.
		return &RunSpec{
			Design:   "b2",
			Topology: "GTAG3 > BTB2 > BIM2",
			Pipeline: Pipeline{GHistBits: 16},
		}, nil
	case "tourney":
		// Alpha-21264-like: a global-history selector over global- and
		// local-history counter tables, BTB on the global side.
		return &RunSpec{
			Design:   "tourney",
			Topology: "TOURNEY3 > [GBIM2 > BTB2, LBIM2]",
			Pipeline: Pipeline{GHistBits: 32, LocalEntries: 256, LocalHistBits: 32},
		}, nil
	}
	return nil, fmt.Errorf("spec: unknown design %q (tage-l, b2, tourney)", name)
}

// PresetNames lists the Table I designs in the paper's order.
func PresetNames() []string { return []string{"tourney", "b2", "tage-l"} }
