// Package spec defines the canonical run-request API: one versioned,
// JSON-serializable description of a full-core simulation — design topology,
// management options, workload reference + content hash, seed, instruction
// budget, host core, fault plan, and observer configuration.
//
// A RunSpec is the unit every entry point shares: the cobra library surface,
// the CLI tools (internal/cli parses flags straight into one), the parallel
// runner (runner.FromSpec / runner.RunSpecs), and the cobra-serve daemon,
// which queues, deduplicates, and caches runs by the spec's content digest.
//
// Canonical form and digest.  Canonical(), or the in-place Canonicalize(),
// produces the normal form: defaults made explicit, the topology re-rendered
// from its parse tree, fault kinds/components sorted and deduplicated, and
// the workload's content hash filled in.  Digest() is the SHA-256 of the
// canonical form's JSON — two specs with equal digests describe
// bit-identical simulations, which is what makes the digest a safe
// content-address for result caches.  The JSON schema is frozen per Version;
// changing the shape of the struct without bumping Version breaks the
// committed golden fixture in spec_test.go, on purpose.
package spec

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"cobra/internal/compose"
	"cobra/internal/faults"
	"cobra/internal/uarch"
	"cobra/internal/workloads"
)

// Version is the current RunSpec schema version.  Bump it whenever the JSON
// shape or the meaning of any field changes; digests embed the version, so a
// bump invalidates every previously cached result.
const Version = 1

// Defaults applied by Canonicalize, shared with the library surface.
const (
	DefaultSeed  = 42
	DefaultInsts = 1_000_000
)

// Pipeline is the serializable subset of compose.Options: the generated
// management-structure parameters.  Zero values mean "default"; Canonicalize
// makes the defaults explicit so equal configurations digest equally.
type Pipeline struct {
	GHistBits     uint   `json:"ghist_bits,omitempty"`
	LocalEntries  int    `json:"local_entries,omitempty"`
	LocalHistBits uint   `json:"local_hist_bits,omitempty"`
	PathBits      uint   `json:"path_bits,omitempty"`
	HFEntries     int    `json:"hf_entries,omitempty"`
	GHRPolicy     string `json:"ghr_policy,omitempty"` // repair | replay | none
}

// FaultPlan is the serializable description of a deterministic
// fault-injection campaign (internal/faults).
type FaultPlan struct {
	Seed       uint64   `json:"seed,omitempty"`
	Period     uint64   `json:"period"`
	Kinds      []string `json:"kinds,omitempty"`
	Components []string `json:"components,omitempty"`
}

// Observe configures the observability artifacts a run produces.  It is part
// of the digest: a run asked to capture events is a different deliverable
// from the same run without them.
type Observe struct {
	// Events captures the cycle-level event trace (ring-buffered).
	Events bool `json:"events,omitempty"`
	// EventsBuf overrides the ring capacity (0 = tracer default).
	EventsBuf int `json:"events_buf,omitempty"`
	// Attribution accumulates the per-PC H2P misprediction profile.
	Attribution bool `json:"attribution,omitempty"`
	// IntervalInsts enables windowed interval telemetry, closing one window
	// every this many committed instructions (internal/interval).
	IntervalInsts uint64 `json:"interval_insts,omitempty"`
}

// RunSpec is the canonical description of one full-core simulation.
type RunSpec struct {
	Version int `json:"version"`

	// Design is the informational design-point name ("tage-l", "custom");
	// it never affects execution and is excluded from nothing — it is part
	// of the canonical JSON, so name your spec consistently.
	Design   string   `json:"design,omitempty"`
	Topology string   `json:"topology"`
	Pipeline Pipeline `json:"pipeline"`

	Workload string `json:"workload"`
	// WorkloadHash pins the workload definition (program.Fingerprint).
	// Canonicalize fills it when empty and rejects a stale mismatch, so a
	// spec minted against one generator version cannot silently reuse
	// results from another.
	WorkloadHash string `json:"workload_hash,omitempty"`

	Seed   uint64 `json:"seed"`
	Insts  uint64 `json:"insts"`
	Warmup uint64 `json:"warmup,omitempty"`

	// Host names a core preset: "boom" (Table II, default) or "inorder"
	// (scalar Rocket-class).  Core, when non-nil, is a full configuration
	// override and wins over Host.
	Host            string        `json:"host,omitempty"`
	Core            *uarch.Config `json:"core,omitempty"`
	SerializedFetch bool          `json:"serialized_fetch,omitempty"`
	SFB             bool          `json:"sfb,omitempty"`

	Paranoid  bool  `json:"paranoid,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	Faults  *FaultPlan `json:"faults,omitempty"`
	Observe Observe    `json:"observe"`
}

// Timeout returns the per-run wall-clock budget (0 = none).
func (s *RunSpec) Timeout() time.Duration { return time.Duration(s.TimeoutMS) * time.Millisecond }

// Options converts the serializable pipeline parameters into compose
// options.  The non-serializable hooks (Wrap, Observer) stay zero; callers
// attach them per run.
func (p Pipeline) Options() (compose.Options, error) {
	pol, err := parseGHRPolicy(p.GHRPolicy)
	if err != nil {
		return compose.Options{}, err
	}
	return compose.Options{
		GHistBits:     p.GHistBits,
		LocalEntries:  p.LocalEntries,
		LocalHistBits: p.LocalHistBits,
		PathBits:      p.PathBits,
		HFEntries:     p.HFEntries,
		GHRPolicy:     pol,
	}, nil
}

// FromOptions extracts the serializable subset of compose options.
func FromOptions(o compose.Options) Pipeline {
	return Pipeline{
		GHistBits:     o.GHistBits,
		LocalEntries:  o.LocalEntries,
		LocalHistBits: o.LocalHistBits,
		PathBits:      o.PathBits,
		HFEntries:     o.HFEntries,
		GHRPolicy:     renderGHRPolicy(o.GHRPolicy),
	}
}

func parseGHRPolicy(s string) (compose.GHRPolicy, error) {
	switch s {
	case "", "repair":
		return compose.GHRRepair, nil
	case "replay":
		return compose.GHRRepairReplay, nil
	case "none":
		return compose.GHRNoRepair, nil
	}
	return 0, fmt.Errorf("spec: unknown ghr_policy %q (repair, replay, none)", s)
}

func renderGHRPolicy(p compose.GHRPolicy) string {
	switch p {
	case compose.GHRRepairReplay:
		return "replay"
	case compose.GHRNoRepair:
		return "none"
	}
	return "repair"
}

// Plan converts the serializable fault plan into an injector plan.  The
// returned plan is fresh per call: faults.Plan accumulates per-pipeline
// injector state and must not be shared across unrelated runs.
func (f *FaultPlan) Plan() (*faults.Plan, error) {
	if f == nil {
		return nil, nil
	}
	kinds, err := faults.ParseKinds(strings.Join(f.Kinds, ","))
	if err != nil {
		return nil, err
	}
	return &faults.Plan{
		Seed:       f.Seed,
		Period:     f.Period,
		Kinds:      kinds,
		Components: append([]string(nil), f.Components...),
	}, nil
}

// ResolveCore returns the host configuration the spec describes, with the
// fetch-serialization and SFB toggles applied.
func (s *RunSpec) ResolveCore() (uarch.Config, error) {
	var cfg uarch.Config
	switch {
	case s.Core != nil:
		cfg = *s.Core
	case s.Host == "" || s.Host == "boom":
		cfg = uarch.DefaultConfig()
	case s.Host == "inorder":
		cfg = uarch.InOrderConfig()
	default:
		return uarch.Config{}, fmt.Errorf("spec: unknown host %q (boom, inorder)", s.Host)
	}
	cfg.SerializedFetch = cfg.SerializedFetch || s.SerializedFetch
	cfg.SFB = cfg.SFB || s.SFB
	return cfg, nil
}

// Canonicalize rewrites the spec in place into its canonical form: version
// and defaults explicit, topology re-rendered from its parse tree, fault
// kinds normalized/sorted (an inert plan drops to nil), components sorted
// and deduplicated, and the workload hash filled in.  It returns an error
// for anything Exec would reject, so a canonical spec is also a valid one.
func (s *RunSpec) Canonicalize() error {
	if s.Version == 0 {
		s.Version = Version
	}
	if s.Version != Version {
		return fmt.Errorf("spec: unsupported version %d (this build speaks %d)", s.Version, Version)
	}
	topo, err := compose.ParseTopology(s.Topology)
	if err != nil {
		return err
	}
	s.Topology = topo.String()

	if s.Pipeline.GHistBits == 0 {
		s.Pipeline.GHistBits = 64
	}
	if s.Pipeline.LocalEntries == 0 {
		s.Pipeline.LocalEntries = 256
	}
	if s.Pipeline.LocalHistBits == 0 {
		s.Pipeline.LocalHistBits = 32
	}
	if s.Pipeline.PathBits == 0 {
		s.Pipeline.PathBits = 16
	}
	if s.Pipeline.HFEntries == 0 {
		s.Pipeline.HFEntries = 32
	}
	pol, err := parseGHRPolicy(s.Pipeline.GHRPolicy)
	if err != nil {
		return err
	}
	s.Pipeline.GHRPolicy = renderGHRPolicy(pol)

	if !workloads.Known(s.Workload) {
		// Get's error names the known set; reuse it.
		_, err := workloads.Get(s.Workload)
		return err
	}
	hash, err := workloads.Fingerprint(s.Workload)
	if err != nil {
		return err
	}
	if s.WorkloadHash != "" && s.WorkloadHash != hash {
		return fmt.Errorf("spec: workload %q hash mismatch: spec pins %s but this build generates %s",
			s.Workload, s.WorkloadHash, hash)
	}
	s.WorkloadHash = hash

	if s.Seed == 0 {
		s.Seed = DefaultSeed
	}
	if s.Insts == 0 {
		s.Insts = DefaultInsts
	}

	if s.Core != nil {
		s.Host = "" // the override is the whole story
	} else if s.Host == "" {
		s.Host = "boom"
	}
	if _, err := s.ResolveCore(); err != nil {
		return err
	}
	if s.TimeoutMS < 0 {
		return fmt.Errorf("spec: negative timeout_ms %d", s.TimeoutMS)
	}

	if s.Faults != nil {
		kinds, err := faults.ParseKinds(strings.Join(s.Faults.Kinds, ","))
		if err != nil {
			return err
		}
		if s.Faults.Period == 0 || kinds == 0 {
			s.Faults = nil // inert plan: injector disabled
		} else {
			names := strings.Split(kinds.String(), "|")
			sort.Strings(names)
			s.Faults.Kinds = names
			s.Faults.Components = normalizeComponents(s.Faults.Components)
		}
	}

	if !s.Observe.Events {
		s.Observe.EventsBuf = 0
	}
	return nil
}

func normalizeComponents(cs []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range cs {
		c = strings.ToUpper(strings.TrimSpace(c))
		if c == "" || seen[c] {
			continue
		}
		seen[c] = true
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Canonical returns the canonicalized copy, leaving the receiver untouched.
func (s *RunSpec) Canonical() (*RunSpec, error) {
	c := s.Clone()
	if err := c.Canonicalize(); err != nil {
		return nil, err
	}
	return c, nil
}

// Clone returns a deep copy.
func (s *RunSpec) Clone() *RunSpec {
	c := *s
	if s.Core != nil {
		core := *s.Core
		c.Core = &core
	}
	if s.Faults != nil {
		f := *s.Faults
		f.Kinds = append([]string(nil), s.Faults.Kinds...)
		f.Components = append([]string(nil), s.Faults.Components...)
		c.Faults = &f
	}
	return &c
}

// Validate reports whether the spec describes a runnable simulation, without
// mutating it.
func (s *RunSpec) Validate() error {
	_, err := s.Canonical()
	return err
}

// Digest returns the content address of the run the spec describes:
// "sha256:<hex>" over the canonical form's JSON.  Specs that digest equally
// produce bit-identical results, so the digest keys result caches and
// deduplicates identical in-flight requests.
func (s *RunSpec) Digest() (string, error) {
	c, err := s.Canonical()
	if err != nil {
		return "", err
	}
	raw, err := json.Marshal(c)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("sha256:%x", sha256.Sum256(raw)), nil
}

// Parse decodes a RunSpec from JSON, rejecting unknown fields so a typo'd
// request fails loudly instead of silently running the default.
func Parse(data []byte) (*RunSpec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s RunSpec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return &s, nil
}
