package program

import (
	"crypto/sha256"
	"fmt"
	"sort"
)

// Fingerprint returns a stable content hash of the program's static image:
// every instruction's PC, kind, class, static target, register dataflow, and
// behaviour parameters, in PC order.  Two programs with the same fingerprint
// drive bit-identical simulations (given equal seeds and configurations), so
// the hash is the workload component of a RunSpec digest: if a generator or
// kernel changes, the fingerprint — and with it every cached result keyed on
// it — changes too.
//
// Synthetic behaviours are pure data (parameters plus a deterministically
// assigned State-slot id) and hash by value.  In a SingleUse program every
// behaviour bridges to a live interpreter machine — pointer-laden state whose
// rendering is not stable across processes — so those hash by type only; an
// interpreted program's identity is pinned by its instruction stream plus the
// source text, which workloads.Fingerprint folds in.
func (p *Program) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "cobra-program-v1 %s entry=%#x instbytes=%d n=%d\n",
		p.Name, p.Entry, p.InstBytes, len(p.insts))
	behave := func(b any) string {
		if p.SingleUse {
			return fmt.Sprintf("%T", b)
		}
		return fmt.Sprintf("%T%+v", b, b)
	}
	pcs := make([]uint64, 0, len(p.insts))
	for pc := range p.insts {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(a, b int) bool { return pcs[a] < pcs[b] })
	for _, pc := range pcs {
		i := p.insts[pc]
		fmt.Fprintf(h, "%#x k=%d c=%d t=%#x r=%d,%d,%d",
			i.PC, i.Kind, i.Class, i.Target, i.Dst, i.Src1, i.Src2)
		if i.Dir != nil {
			fmt.Fprintf(h, " dir=%s", behave(i.Dir))
		}
		if i.Tgt != nil {
			fmt.Fprintf(h, " tgt=%s", behave(i.Tgt))
		}
		if i.Mem != nil {
			fmt.Fprintf(h, " mem=%s", behave(i.Mem))
		}
		if i.Sem != nil {
			fmt.Fprintf(h, " sem=%T", i.Sem)
		}
		h.Write([]byte("\n"))
	}
	return fmt.Sprintf("sha256:%x", h.Sum(nil))
}
