package program

// State is the shared architectural execution state behaviours may consult:
// the committed branch-outcome history (for correlated branches), a
// deterministic PRNG (for biased-random branches), and the slot array that
// holds every stateful behaviour's per-execution counters.  Keeping those
// counters here — rather than inside the behaviour structs — is what makes a
// built Program immutable, so one cached instance can drive any number of
// concurrent simulations.
type State struct {
	rng    uint64   // xorshift64* state
	recent uint64   // last 64 committed conditional-branch outcomes, bit 0 newest
	iter   uint64   // committed instruction count
	slots  []uint64 // per-execution behaviour state, indexed by slot id
}

// NewState seeds the architectural state.
func NewState(seed uint64) *State {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &State{rng: seed}
}

// Rand returns the next deterministic pseudo-random 64-bit value.
func (s *State) Rand() uint64 {
	x := s.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	s.rng = x
	return x * 0x2545F4914F6CDD1D
}

// Chance returns true with probability p (deterministically pseudo-random).
func (s *State) Chance(p float64) bool {
	return float64(s.Rand()>>11)/float64(1<<53) < p
}

// Record appends a committed conditional-branch outcome.
func (s *State) Record(taken bool) {
	s.recent <<= 1
	if taken {
		s.recent |= 1
	}
}

// Outcome returns the committed outcome depth branches ago (0 = the most
// recent).
func (s *State) Outcome(depth uint) bool {
	return s.recent>>depth&1 == 1
}

// Tick advances the committed instruction counter.
func (s *State) Tick() { s.iter++ }

// Iter returns the committed instruction count.
func (s *State) Iter() uint64 { return s.iter }

// slot returns the per-execution state cell for a behaviour, growing the
// array on first touch (behaviours used outside a sealed Program default to
// slot 0).
func (s *State) slot(id int) *uint64 {
	if id >= len(s.slots) {
		grown := make([]uint64, id+1)
		copy(grown, s.slots)
		s.slots = grown
	}
	return &s.slots[id]
}

// grow pre-sizes the slot array for a program's behaviours.
func (s *State) grow(n int) {
	if n > len(s.slots) {
		grown := make([]uint64, n)
		copy(grown, s.slots)
		s.slots = grown
	}
}

// slotted is implemented by behaviours whose per-execution state lives in a
// State slot.  Program.Validate assigns each such behaviour a distinct slot
// id (in PC order, so assignment is deterministic), after which the
// behaviour struct itself is never written again.  Id 0 is the unassigned
// sentinel: behaviours used standalone (outside a validated Program) all
// share slot 0.
type slotted interface {
	slotID() int
	setSlot(id int)
}

// slotRef embeds a State-slot id into a stateful behaviour.
type slotRef struct{ id int }

func (s *slotRef) slotID() int    { return s.id }
func (s *slotRef) setSlot(id int) { s.id = id }

// DirBehavior produces a branch's dynamic direction; Next is called once per
// architectural execution of the branch, in program order.
type DirBehavior interface {
	Next(st *State) bool
}

// TgtBehavior produces an indirect jump's dynamic target.
type TgtBehavior interface {
	NextTarget(st *State) uint64
}

// MemBehavior produces a memory instruction's effective address.
type MemBehavior interface {
	NextAddr(st *State) uint64
}

// SemBehavior executes an instruction's computational semantics when the
// architectural oracle reaches it (used by interpreted-ISA programs whose
// branch outcomes depend on real register/memory contents).
type SemBehavior interface {
	Exec(st *State)
}

// --- direction behaviours ---

// LoopDir is taken Trip-1 times then not-taken once, repeating — a
// fixed-trip-count loop back-edge, the loop predictor's home turf.
type LoopDir struct {
	slotRef
	Trip int
}

// Next implements DirBehavior.
func (l *LoopDir) Next(st *State) bool {
	i := st.slot(l.id)
	*i++
	if *i >= uint64(l.Trip) {
		*i = 0
		return false
	}
	return true
}

// PatternDir repeats a fixed direction pattern — learnable by any
// global-history predictor whose history covers the period.
type PatternDir struct {
	slotRef
	Bits []bool
}

// Next implements DirBehavior.
func (p *PatternDir) Next(st *State) bool {
	i := st.slot(p.id)
	b := p.Bits[*i]
	*i = (*i + 1) % uint64(len(p.Bits))
	return b
}

// BiasedDir is taken with i.i.d. probability P — the irreducible
// mispredict floor of data-dependent branches.
type BiasedDir struct {
	P float64
}

// Next implements DirBehavior.
func (b *BiasedDir) Next(st *State) bool { return st.Chance(b.P) }

// CorrDir correlates with the committed global outcome Depth branches ago
// (optionally inverted) — learnable by global-history predictors with
// sufficient history length, invisible to PC-indexed tables.
type CorrDir struct {
	Depth  uint
	Invert bool
	// Noise is the probability the correlation breaks (0 = pure).
	Noise float64
}

// Next implements DirBehavior.
func (c *CorrDir) Next(st *State) bool {
	out := st.Outcome(c.Depth) != c.Invert
	if c.Noise > 0 && st.Chance(c.Noise) {
		return !out
	}
	return out
}

// XorCorrDir is the XOR of two committed outcomes — needs genuinely
// pattern-capable predictors (perceptrons famously fail on XOR of
// positions they can only weigh linearly... TAGE learns it as context).
type XorCorrDir struct {
	D1, D2 uint
}

// Next implements DirBehavior.
func (x *XorCorrDir) Next(st *State) bool {
	return st.Outcome(x.D1) != st.Outcome(x.D2)
}

// LocalPeriodicDir is a branch whose own outcome history is periodic but
// whose phase is unrelated to global history — the local-history predictor's
// specialty (and a source of Tournament-vs-B2 differences).
type LocalPeriodicDir struct {
	slotRef
	Period int // taken except every Period-th execution
}

// Next implements DirBehavior.
func (l *LocalPeriodicDir) Next(st *State) bool {
	i := st.slot(l.id)
	*i++
	if *i >= uint64(l.Period) {
		*i = 0
		return false
	}
	return true
}

// AlternatingDir flips every execution (period-2 local pattern).
type AlternatingDir struct{ slotRef }

// Next implements DirBehavior.
func (a *AlternatingDir) Next(st *State) bool {
	i := st.slot(a.id)
	*i ^= 1
	return *i == 1
}

// --- target behaviours ---

// CycleTgt cycles through a fixed target list (a switch statement visiting
// cases round-robin).
type CycleTgt struct {
	slotRef
	Targets []uint64
}

// NextTarget implements TgtBehavior.
func (c *CycleTgt) NextTarget(st *State) uint64 {
	i := st.slot(c.id)
	t := c.Targets[*i]
	*i = (*i + 1) % uint64(len(c.Targets))
	return t
}

// WeightedTgt picks target 0 with probability P0, else uniformly among the
// rest (a virtual call with a dominant receiver).
type WeightedTgt struct {
	Targets []uint64
	P0      float64
}

// NextTarget implements TgtBehavior.
func (w *WeightedTgt) NextTarget(st *State) uint64 {
	if len(w.Targets) == 1 || st.Chance(w.P0) {
		return w.Targets[0]
	}
	rest := w.Targets[1:]
	return rest[st.Rand()%uint64(len(rest))]
}

// --- memory behaviours ---

// StrideMem walks Base..Base+Span with a fixed stride (streaming access;
// mostly cache hits after warmup).
type StrideMem struct {
	slotRef
	Base   uint64
	Stride uint64
	Span   uint64
}

// NextAddr implements MemBehavior.
func (m *StrideMem) NextAddr(st *State) uint64 {
	off := st.slot(m.id)
	a := m.Base + *off
	*off += m.Stride
	if m.Span > 0 && *off >= m.Span {
		*off = 0
	}
	return a
}

// RandMem touches uniformly random addresses in a working set of Size bytes
// (pointer chasing; miss rate set by Size vs cache capacity).
type RandMem struct {
	Base uint64
	Size uint64
}

// NextAddr implements MemBehavior.
func (m *RandMem) NextAddr(st *State) uint64 {
	if m.Size == 0 {
		return m.Base
	}
	return m.Base + st.Rand()%m.Size&^7
}
