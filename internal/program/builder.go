package program

import "fmt"

// Builder assembles synthetic programs: straight-line ops, loops with
// back-edges, forward "hammock" branches, calls/returns, and indirect
// switches, with register dataflow assigned for the backend's dependency
// model.  Forward control flow uses fixup handles so targets can be bound
// after the body is emitted.
type Builder struct {
	p   *Program
	pc  uint64
	rng uint64
}

// NewBuilder starts building at entry.
func NewBuilder(name string, entry uint64, instBytes int, seed uint64) *Builder {
	if seed == 0 {
		seed = 0xDEADBEEF
	}
	return &Builder{p: New(name, entry, instBytes), pc: entry, rng: seed}
}

// PC returns the address of the next emitted instruction (usable as a
// backward label).
func (b *Builder) PC() uint64 { return b.pc }

func (b *Builder) rand() uint64 {
	x := b.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	b.rng = x
	return x * 0x2545F4914F6CDD1D
}

func (b *Builder) reg() uint8 { return uint8(1 + b.rand()%31) }

func (b *Builder) emit(i *Inst) *Inst {
	i.PC = b.pc
	b.p.Add(i)
	b.pc += uint64(b.p.InstBytes)
	return i
}

// Op emits one non-CFI instruction of the given class with random registers.
func (b *Builder) Op(class Class) *Inst {
	i := &Inst{Kind: KindOp, Class: class, Dst: b.reg(), Src1: b.reg(), Src2: b.reg()}
	return b.emit(i)
}

// Ops emits n ALU-weighted ops with the given load/store/fp mix (fractions
// of n, approximately).
func (b *Builder) Ops(n int, loadFrac, storeFrac, fpFrac float64, mem func() MemBehavior) {
	for k := 0; k < n; k++ {
		r := float64(b.rand()>>11) / float64(1<<53)
		switch {
		case r < loadFrac:
			i := b.Op(ClassLoad)
			i.Mem = mem()
		case r < loadFrac+storeFrac:
			i := b.Op(ClassStore)
			i.Mem = mem()
		case r < loadFrac+storeFrac+fpFrac:
			b.Op(ClassFP)
		default:
			b.Op(ClassALU)
		}
	}
}

// Branch emits a conditional branch to a known (backward) target.
func (b *Builder) Branch(target uint64, dir DirBehavior) *Inst {
	return b.emit(&Inst{Kind: KindBranch, Class: ClassALU, Target: target, Dir: dir,
		Src1: b.reg(), Src2: b.reg()})
}

// Fixup is an unresolved forward control-flow edge.
type Fixup struct {
	inst *Inst
	b    *Builder
}

// Bind points the pending edge at the next emitted instruction.
func (f *Fixup) Bind() {
	f.inst.Target = f.b.pc
}

// BindTo points the pending edge at a known address (e.g. a loop head).
func (f *Fixup) BindTo(target uint64) {
	f.inst.Target = target
}

// ForwardBranch emits a conditional branch whose target is bound later.
func (b *Builder) ForwardBranch(dir DirBehavior) *Fixup {
	i := b.emit(&Inst{Kind: KindBranch, Class: ClassALU, Dir: dir,
		Src1: b.reg(), Src2: b.reg()})
	return &Fixup{inst: i, b: b}
}

// ForwardJump emits an unconditional jump bound later.
func (b *Builder) ForwardJump() *Fixup {
	i := b.emit(&Inst{Kind: KindJump, Class: ClassALU})
	return &Fixup{inst: i, b: b}
}

// Jump emits an unconditional jump to a known target.
func (b *Builder) Jump(target uint64) *Inst {
	return b.emit(&Inst{Kind: KindJump, Class: ClassALU, Target: target})
}

// Call emits a call to a function entry.
func (b *Builder) Call(target uint64) *Inst {
	return b.emit(&Inst{Kind: KindCall, Class: ClassALU, Target: target})
}

// Ret emits a return.
func (b *Builder) Ret() *Inst {
	return b.emit(&Inst{Kind: KindRet, Class: ClassALU})
}

// Indirect emits an indirect jump with the given target behaviour.
func (b *Builder) Indirect(tgt TgtBehavior) *Inst {
	return b.emit(&Inst{Kind: KindIndirect, Class: ClassALU, Tgt: tgt})
}

// Loop emits: header label; body (built by f); back-edge branch taken
// trip-1 times.  The loop body must not fall off the image.
func (b *Builder) Loop(trip int, f func()) {
	head := b.pc
	f()
	b.Branch(head, &LoopDir{Trip: trip})
}

// Hammock emits a short forward branch (taken with probability skipP) over
// a body of n ops — the "set-flag and conditional-execute" candidate of
// §VI-C.  Returns the branch instruction.
func (b *Builder) Hammock(skipP float64, n int, class Class) *Inst {
	fx := b.ForwardBranch(&BiasedDir{P: skipP})
	for k := 0; k < n; k++ {
		b.Op(class)
	}
	fx.Bind()
	// Landing pad so the bound target exists even at a block boundary.
	b.Op(ClassALU)
	return fx.inst
}

// Func builds a function: records its entry, runs f for the body, emits the
// return, and gives back the entry address.
func (b *Builder) Func(f func()) uint64 {
	entry := b.pc
	f()
	b.Ret()
	return entry
}

// Seal finishes the program: emits a jump back to the entry (so execution
// never falls off the image) and validates the result.
func (b *Builder) Seal() (*Program, error) {
	b.Jump(b.p.Entry)
	if err := b.p.Validate(); err != nil {
		return nil, fmt.Errorf("program: seal: %w", err)
	}
	return b.p, nil
}

// MustSeal is Seal for known-good builders.
func (b *Builder) MustSeal() *Program {
	p, err := b.Seal()
	if err != nil {
		panic(err)
	}
	return p
}
