package program

import "fmt"

// Step is one committed instruction with its architectural truth.
type Step struct {
	Inst   *Inst
	PC     uint64
	Taken  bool   // CFI direction (true for unconditional taken flow)
	Target uint64 // actual control-flow target when Taken
	NextPC uint64 // architectural successor
	Addr   uint64 // effective address for memory ops
}

// Oracle executes a program architecturally, producing the committed
// instruction stream the timing model is measured against.  The frontend
// never consults the oracle for predictions; it only aligns delivered
// instructions against this stream to classify correct- vs wrong-path
// fetch (see internal/uarch).
type Oracle struct {
	prog  *Program
	st    *State
	pc    uint64
	stack []uint64 // architectural call stack (for KindRet)
	count uint64
}

// NewOracle starts architectural execution at the program entry.
func NewOracle(p *Program, seed uint64) *Oracle {
	st := NewState(seed)
	st.grow(p.Slots())
	return &Oracle{prog: p, st: st, pc: p.Entry}
}

// State exposes the architectural state (behaviours share it).
func (o *Oracle) State() *State { return o.st }

// PC returns the next instruction's address.
func (o *Oracle) PC() uint64 { return o.pc }

// Count returns how many instructions have been executed.
func (o *Oracle) Count() uint64 { return o.count }

// Next executes one instruction and returns its Step.
func (o *Oracle) Next() Step {
	inst := o.prog.At(o.pc)
	if inst == nil {
		panic(fmt.Sprintf("program %s: architectural execution fell off the image at %#x",
			o.prog.Name, o.pc))
	}
	s := Step{Inst: inst, PC: o.pc}
	fall := o.pc + uint64(o.prog.InstBytes)
	if inst.Sem != nil {
		// Computational semantics run before control flow is decided (a
		// branch's own condition is evaluated by its Dir behaviour).
		inst.Sem.Exec(o.st)
	}
	switch inst.Kind {
	case KindOp:
		s.NextPC = fall
	case KindBranch:
		s.Taken = inst.Dir.Next(o.st)
		o.st.Record(s.Taken)
		if s.Taken {
			s.Target = inst.Target
			s.NextPC = inst.Target
		} else {
			s.NextPC = fall
		}
	case KindJump:
		s.Taken = true
		s.Target = inst.Target
		s.NextPC = inst.Target
	case KindCall:
		s.Taken = true
		s.Target = inst.Target
		s.NextPC = inst.Target
		o.stack = append(o.stack, fall)
	case KindRet:
		s.Taken = true
		if len(o.stack) == 0 {
			panic(fmt.Sprintf("program %s: return with empty call stack at %#x", o.prog.Name, o.pc))
		}
		s.Target = o.stack[len(o.stack)-1]
		o.stack = o.stack[:len(o.stack)-1]
		s.NextPC = s.Target
	case KindIndirect:
		s.Taken = true
		s.Target = inst.Tgt.NextTarget(o.st)
		s.NextPC = s.Target
	}
	if inst.Mem != nil {
		s.Addr = inst.Mem.NextAddr(o.st)
	}
	o.st.Tick()
	o.count++
	o.pc = s.NextPC
	return s
}
