package program

import (
	"testing"
	"testing/quick"
)

func TestStateDeterminism(t *testing.T) {
	a, b := NewState(7), NewState(7)
	for i := 0; i < 100; i++ {
		if a.Rand() != b.Rand() {
			t.Fatal("State PRNG not deterministic")
		}
	}
	c := NewState(8)
	same := true
	for i := 0; i < 10; i++ {
		if NewState(7).Rand() != c.Rand() {
			same = false
		}
		c = NewState(8)
	}
	_ = same // different seeds merely *likely* differ; determinism is the contract
}

func TestStateRecordOutcome(t *testing.T) {
	s := NewState(1)
	s.Record(true)
	s.Record(false)
	s.Record(true)
	if !s.Outcome(0) || s.Outcome(1) || !s.Outcome(2) {
		t.Errorf("outcome ring wrong: recent=%b", s.recent)
	}
}

func TestChanceBounds(t *testing.T) {
	s := NewState(3)
	if s.Chance(0) {
		t.Error("Chance(0) must be false")
	}
	for i := 0; i < 100; i++ {
		if !s.Chance(1) {
			t.Error("Chance(1) must be true")
		}
	}
}

func TestLoopDir(t *testing.T) {
	d := &LoopDir{Trip: 4}
	st := NewState(1)
	var got []bool
	for i := 0; i < 8; i++ {
		got = append(got, d.Next(st))
	}
	want := []bool{true, true, true, false, true, true, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LoopDir seq = %v, want %v", got, want)
		}
	}
}

func TestPatternAndAlternating(t *testing.T) {
	p := &PatternDir{Bits: []bool{true, false, false}}
	st := NewState(1)
	for i := 0; i < 9; i++ {
		want := i%3 == 0
		if p.Next(st) != want {
			t.Fatalf("PatternDir wrong at %d", i)
		}
	}
	a := &AlternatingDir{}
	if !a.Next(st) || a.Next(st) || !a.Next(st) {
		t.Error("AlternatingDir wrong")
	}
}

func TestCorrDir(t *testing.T) {
	st := NewState(1)
	st.Record(true)
	st.Record(false) // depth 0 = false, depth 1 = true
	c := &CorrDir{Depth: 1}
	if !c.Next(st) {
		t.Error("CorrDir should follow depth-1 outcome (true)")
	}
	ci := &CorrDir{Depth: 1, Invert: true}
	if ci.Next(st) {
		t.Error("inverted CorrDir should be false")
	}
	x := &XorCorrDir{D1: 0, D2: 1}
	if !x.Next(st) {
		t.Error("XorCorrDir(false, true) should be true")
	}
}

func TestMemBehaviors(t *testing.T) {
	m := &StrideMem{Base: 0x1000, Stride: 8, Span: 24}
	st := NewState(1)
	got := []uint64{m.NextAddr(st), m.NextAddr(st), m.NextAddr(st), m.NextAddr(st)}
	want := []uint64{0x1000, 0x1008, 0x1010, 0x1000}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("StrideMem = %#x, want %#x", got, want)
		}
	}
	r := &RandMem{Base: 0x2000, Size: 4096}
	f := func(n uint8) bool {
		a := r.NextAddr(st)
		return a >= 0x2000 && a < 0x2000+4096 && a%8 == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCycleAndWeightedTgt(t *testing.T) {
	c := &CycleTgt{Targets: []uint64{0x10, 0x20}}
	st := NewState(1)
	if c.NextTarget(st) != 0x10 || c.NextTarget(st) != 0x20 || c.NextTarget(st) != 0x10 {
		t.Error("CycleTgt order wrong")
	}
	w := &WeightedTgt{Targets: []uint64{0x10, 0x20, 0x30}, P0: 1}
	if w.NextTarget(st) != 0x10 {
		t.Error("WeightedTgt P0=1 must return first")
	}
	w.P0 = 0
	for i := 0; i < 50; i++ {
		if w.NextTarget(st) == 0x10 {
			t.Error("WeightedTgt P0=0 must not return first")
		}
	}
}

func TestBuilderLoopProgram(t *testing.T) {
	b := NewBuilder("loop", 0x1000, 4, 1)
	b.Loop(5, func() {
		b.Ops(3, 0, 0, 0, nil)
	})
	p := b.MustSeal()
	if p.Len() != 5 { // 3 ops + branch + seal jump
		t.Fatalf("program len = %d", p.Len())
	}
	o := NewOracle(p, 1)
	// Each loop iteration = 4 insts; after 5 iterations the back-edge falls
	// through to the seal jump, wrapping to entry.
	count := map[Kind]int{}
	for i := 0; i < 21; i++ {
		s := o.Next()
		count[s.Inst.Kind]++
	}
	if count[KindBranch] != 5 {
		t.Errorf("branch executions = %d, want 5", count[KindBranch])
	}
	if count[KindJump] != 1 {
		t.Errorf("seal jump executions = %d, want 1", count[KindJump])
	}
}

func TestBuilderCallRet(t *testing.T) {
	b := NewBuilder("calls", 0x1000, 4, 1)
	var fn uint64
	// Emit the function after the main loop; bind via forward jump trick:
	// build main first with a placeholder call, then the function.
	// Simpler: function first, then entry must still be 0x1000 — so build
	// the function at a high address using a second builder region.
	// Here: entry jumps over the function body.
	skip := b.ForwardJump()
	fn = b.Func(func() {
		b.Ops(2, 0, 0, 0, nil)
	})
	skip.Bind()
	b.Loop(3, func() {
		b.Call(fn)
	})
	p := b.MustSeal()
	o := NewOracle(p, 1)
	rets := 0
	for i := 0; i < 40; i++ {
		s := o.Next()
		if s.Inst.Kind == KindRet {
			rets++
			if s.Target == 0 {
				t.Fatal("return target unresolved")
			}
		}
	}
	if rets == 0 {
		t.Error("no returns executed")
	}
}

func TestOracleStreamIsClosed(t *testing.T) {
	b := NewBuilder("mix", 0x4000, 4, 99)
	sw := make([]uint64, 0, 3)
	jumps := make([]*Fixup, 0)
	// Three switch case bodies.
	entrySkip := b.ForwardJump()
	for i := 0; i < 3; i++ {
		sw = append(sw, b.PC())
		b.Ops(2, 0, 0, 0, nil)
		jumps = append(jumps, b.ForwardJump())
	}
	entrySkip.Bind()
	b.Loop(10, func() {
		b.Hammock(0.3, 2, ClassALU)
		b.Indirect(&CycleTgt{Targets: sw})
		for _, j := range jumps {
			_ = j
		}
		// Bind all case exits to here (the continuation point).
	})
	// The case bodies jump into the loop after the indirect: bind them to
	// the back-edge... they were bound already? No: bind now is too late
	// (Bind points at b.pc). Rebuild properly below.
	p, err := b.Seal()
	if err == nil {
		// The case-exit jumps were never bound (target 0 outside image).
		t.Fatal("expected seal to fail for unbound fixups")
	}
	_ = p
}

func TestValidateCatchesBadPrograms(t *testing.T) {
	p := New("bad", 0x1000, 4)
	p.Add(&Inst{PC: 0x1000, Kind: KindBranch, Target: 0x9000, Dir: &BiasedDir{P: 0.5}})
	if err := p.Validate(); err == nil {
		t.Error("dangling branch target must fail validation")
	}
	p2 := New("bad2", 0x1000, 4)
	p2.Add(&Inst{PC: 0x1000, Kind: KindBranch, Target: 0x1000})
	if err := p2.Validate(); err == nil {
		t.Error("branch without behaviour must fail validation")
	}
	p3 := New("bad3", 0x1000, 4)
	if err := p3.Validate(); err == nil {
		t.Error("missing entry must fail validation")
	}
	p4 := New("bad4", 0x1000, 4)
	p4.Add(&Inst{PC: 0x1000, Kind: KindOp, Class: ClassLoad})
	if err := p4.Validate(); err == nil {
		t.Error("load without address behaviour must fail validation")
	}
}

func TestDuplicatePCPanics(t *testing.T) {
	p := New("dup", 0x1000, 4)
	p.Add(&Inst{PC: 0x1000})
	defer func() {
		if recover() == nil {
			t.Error("duplicate PC must panic")
		}
	}()
	p.Add(&Inst{PC: 0x1000})
}

// TestProgramSharedAcrossOracles pins the immutability contract the
// workload cache and parallel runner depend on: one built Program instance
// driven by two independent Oracles produces identical, non-interfering
// streams (all per-execution behaviour state lives in each Oracle's State).
func TestProgramSharedAcrossOracles(t *testing.T) {
	b := NewBuilder("shared", 0x1000, 4, 42)
	sw := []uint64{}
	entrySkip := b.ForwardJump()
	exits := []*Fixup{}
	for i := 0; i < 3; i++ {
		sw = append(sw, b.PC())
		b.Ops(2, 0.3, 0, 0, func() MemBehavior {
			return &StrideMem{Base: 0x8000, Stride: 8, Span: 64}
		})
		exits = append(exits, b.ForwardJump())
	}
	entrySkip.Bind()
	head := b.PC()
	b.Loop(7, func() {
		b.Hammock(0.5, 2, ClassALU)
		b.Ops(2, 0, 0, 0, nil)
	})
	b.Indirect(&CycleTgt{Targets: sw})
	for _, fx := range exits {
		fx.Bind()
	}
	b.Jump(head)
	p := b.MustSeal()
	if p.Slots() == 0 {
		t.Fatal("program with loops/strides/cycle targets must allocate State slots")
	}

	// Interleave two oracles over the same image: each must see the stream a
	// private program copy would have produced.
	a, b2 := NewOracle(p, 9), NewOracle(p, 9)
	// Advance a ahead by a full pass to desynchronize, then restart b2's
	// comparison against a fresh third oracle.
	for i := 0; i < 100; i++ {
		a.Next()
	}
	c := NewOracle(p, 9)
	for i := 0; i < 500; i++ {
		sb, sc := b2.Next(), c.Next()
		if sb.PC != sc.PC || sb.Taken != sc.Taken || sb.Addr != sc.Addr || sb.Target != sc.Target {
			t.Fatalf("shared-program divergence at step %d: %+v vs %+v", i, sb, sc)
		}
	}
}

func TestOracleDeterministicReplay(t *testing.T) {
	mk := func() *Oracle {
		b := NewBuilder("det", 0x1000, 4, 42)
		b.Loop(7, func() {
			b.Hammock(0.5, 3, ClassALU)
			b.Ops(4, 0.3, 0.1, 0.1, func() MemBehavior {
				return &RandMem{Base: 0x10000, Size: 1 << 16}
			})
		})
		return NewOracle(b.MustSeal(), 42)
	}
	a, b2 := mk(), mk()
	for i := 0; i < 5000; i++ {
		sa, sb := a.Next(), b2.Next()
		if sa.PC != sb.PC || sa.Taken != sb.Taken || sa.NextPC != sb.NextPC || sa.Addr != sb.Addr {
			t.Fatalf("divergence at %d: %+v vs %+v", i, sa, sb)
		}
	}
}
