// Package program is the workload substrate: a synthetic program image
// (instructions at addresses, control flow with parameterized dynamic
// behaviours) plus an architectural oracle that produces the committed
// instruction stream.
//
// The paper evaluates on SPECint17 binaries running under FPGA simulation;
// neither SPEC nor an FPGA is available here, so workloads are synthetic
// programs whose *branch populations* — loops with trip counts, global
// pattern branches, data-correlated branches, hard random branches, indirect
// jumps, call/return trees — are shaped per benchmark profile (see
// internal/workloads and DESIGN.md for the substitution rationale).
//
// The split between Program (static image) and Oracle (dynamic truth)
// matters for fidelity: the frontend model fetches from the static image
// along the *predicted* path — including wrong paths — while actual branch
// outcomes exist only on the committed path, exactly as in hardware.
package program

import "fmt"

// Kind classifies an instruction's control-flow role.
type Kind uint8

// Instruction kinds.
const (
	KindOp Kind = iota
	KindBranch
	KindJump
	KindCall
	KindRet
	KindIndirect
)

func (k Kind) String() string {
	switch k {
	case KindOp:
		return "op"
	case KindBranch:
		return "branch"
	case KindJump:
		return "jump"
	case KindCall:
		return "call"
	case KindRet:
		return "ret"
	case KindIndirect:
		return "indirect"
	}
	return "invalid"
}

// IsCFI reports whether the kind redirects control flow.
func (k Kind) IsCFI() bool { return k != KindOp }

// Class is the execution class driving the backend timing model.
type Class uint8

// Execution classes (mapped to the BOOM issue queues of Table II).
const (
	ClassALU Class = iota
	ClassMul
	ClassLoad
	ClassStore
	ClassFP
)

func (c Class) String() string {
	switch c {
	case ClassALU:
		return "alu"
	case ClassMul:
		return "mul"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassFP:
		return "fp"
	}
	return "invalid"
}

// Inst is one instruction of the synthetic image.
type Inst struct {
	PC     uint64
	Kind   Kind
	Class  Class
	Target uint64 // static target (branch/jump/call); 0 for ret/indirect

	Dir DirBehavior // branches: dynamic direction
	Tgt TgtBehavior // indirect jumps: dynamic target
	Mem MemBehavior // loads/stores: address stream
	Sem SemBehavior // optional computational semantics (interpreted ISAs)

	// Register dataflow for the backend's dependency model (0 = none).
	Dst, Src1, Src2 uint8
}

// Program is a closed static instruction image.
//
// Branch/target/memory behaviours attached to instructions are *stateful*
// (loop counters, pattern phases): a Program instance supports exactly one
// architectural execution.  Build a fresh instance per simulation — the
// workloads package generators are deterministic, so two builds with the
// same profile produce identical dynamics.
type Program struct {
	Name      string
	Entry     uint64
	InstBytes int
	insts     map[uint64]*Inst
}

// New creates an empty program.
func New(name string, entry uint64, instBytes int) *Program {
	return &Program{Name: name, Entry: entry, InstBytes: instBytes,
		insts: make(map[uint64]*Inst)}
}

// Add inserts an instruction; duplicate PCs are a builder bug.
func (p *Program) Add(i *Inst) {
	if _, dup := p.insts[i.PC]; dup {
		panic(fmt.Sprintf("program: duplicate instruction at %#x", i.PC))
	}
	p.insts[i.PC] = i
}

// At returns the instruction at pc, or nil outside the image (wrong-path
// fetch beyond the program fetches garbage, modelled as nil -> NOP).
func (p *Program) At(pc uint64) *Inst { return p.insts[pc] }

// Len returns the number of instructions in the image.
func (p *Program) Len() int { return len(p.insts) }

// Validate checks the image is closed: every static target exists, every
// branch has a direction behaviour, every indirect a target behaviour.
func (p *Program) Validate() error {
	for pc, i := range p.insts {
		if i.PC != pc {
			return fmt.Errorf("program %s: inst PC %#x filed under %#x", p.Name, i.PC, pc)
		}
		switch i.Kind {
		case KindBranch:
			if i.Dir == nil {
				return fmt.Errorf("program %s: branch at %#x has no direction behaviour", p.Name, pc)
			}
			if p.insts[i.Target] == nil {
				return fmt.Errorf("program %s: branch at %#x targets %#x outside image", p.Name, pc, i.Target)
			}
		case KindJump, KindCall:
			if p.insts[i.Target] == nil {
				return fmt.Errorf("program %s: %s at %#x targets %#x outside image", p.Name, i.Kind, pc, i.Target)
			}
		case KindIndirect:
			if i.Tgt == nil {
				return fmt.Errorf("program %s: indirect at %#x has no target behaviour", p.Name, pc)
			}
		}
		if i.Kind == KindOp || i.Kind == KindBranch {
			// Fall-through successor must exist.
			if p.insts[pc+uint64(p.InstBytes)] == nil {
				return fmt.Errorf("program %s: %s at %#x falls through outside image", p.Name, i.Kind, pc)
			}
		}
		if (i.Class == ClassLoad || i.Class == ClassStore) && i.Mem == nil {
			return fmt.Errorf("program %s: memory op at %#x has no address behaviour", p.Name, pc)
		}
	}
	if p.insts[p.Entry] == nil {
		return fmt.Errorf("program %s: entry %#x outside image", p.Name, p.Entry)
	}
	return nil
}
