// Package program is the workload substrate: a synthetic program image
// (instructions at addresses, control flow with parameterized dynamic
// behaviours) plus an architectural oracle that produces the committed
// instruction stream.
//
// The paper evaluates on SPECint17 binaries running under FPGA simulation;
// neither SPEC nor an FPGA is available here, so workloads are synthetic
// programs whose *branch populations* — loops with trip counts, global
// pattern branches, data-correlated branches, hard random branches, indirect
// jumps, call/return trees — are shaped per benchmark profile (see
// internal/workloads and DESIGN.md for the substitution rationale).
//
// The split between Program (static image) and Oracle (dynamic truth)
// matters for fidelity: the frontend model fetches from the static image
// along the *predicted* path — including wrong paths — while actual branch
// outcomes exist only on the committed path, exactly as in hardware.
package program

import (
	"fmt"
	"sort"
)

// Kind classifies an instruction's control-flow role.
type Kind uint8

// Instruction kinds.
const (
	KindOp Kind = iota
	KindBranch
	KindJump
	KindCall
	KindRet
	KindIndirect
)

func (k Kind) String() string {
	switch k {
	case KindOp:
		return "op"
	case KindBranch:
		return "branch"
	case KindJump:
		return "jump"
	case KindCall:
		return "call"
	case KindRet:
		return "ret"
	case KindIndirect:
		return "indirect"
	}
	return "invalid"
}

// IsCFI reports whether the kind redirects control flow.
func (k Kind) IsCFI() bool { return k != KindOp }

// Class is the execution class driving the backend timing model.
type Class uint8

// Execution classes (mapped to the BOOM issue queues of Table II).
const (
	ClassALU Class = iota
	ClassMul
	ClassLoad
	ClassStore
	ClassFP
)

func (c Class) String() string {
	switch c {
	case ClassALU:
		return "alu"
	case ClassMul:
		return "mul"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassFP:
		return "fp"
	}
	return "invalid"
}

// Inst is one instruction of the synthetic image.
type Inst struct {
	PC     uint64
	Kind   Kind
	Class  Class
	Target uint64 // static target (branch/jump/call); 0 for ret/indirect

	Dir DirBehavior // branches: dynamic direction
	Tgt TgtBehavior // indirect jumps: dynamic target
	Mem MemBehavior // loads/stores: address stream
	Sem SemBehavior // optional computational semantics (interpreted ISAs)

	// Register dataflow for the backend's dependency model (0 = none).
	Dst, Src1, Src2 uint8
}

// Program is a closed static instruction image.
//
// Built-in behaviours keep their per-execution state (loop counters, pattern
// phases) in State slots assigned by Add, so a built Program is immutable:
// any number of concurrent Oracles — and therefore simulations — may share
// one instance.  The exception is interpreted-ISA programs, whose behaviours
// mutate a shared Machine; those set SingleUse and must be rebuilt per
// simulation (the workloads cache honours this).
type Program struct {
	Name      string
	Entry     uint64
	InstBytes int

	// SingleUse marks a program whose behaviours carry mutable state outside
	// State slots (interpreted-ISA machines); such a program supports exactly
	// one architectural execution and must never be shared or cached.
	SingleUse bool

	insts  map[uint64]*Inst
	nSlots int
}

// New creates an empty program.
func New(name string, entry uint64, instBytes int) *Program {
	return &Program{Name: name, Entry: entry, InstBytes: instBytes,
		insts: make(map[uint64]*Inst)}
}

// Add inserts an instruction; duplicate PCs are a builder bug.
func (p *Program) Add(i *Inst) {
	if _, dup := p.insts[i.PC]; dup {
		panic(fmt.Sprintf("program: duplicate instruction at %#x", i.PC))
	}
	p.insts[i.PC] = i
}

// Slots returns how many State cells the program's behaviours use (slot ids
// run 1..n; cell 0 is the shared default for unassigned behaviours).
func (p *Program) Slots() int { return p.nSlots + 1 }

// assignSlots gives every stateful behaviour its State slot, in PC order so
// two builds of the same program assign identically.  A behaviour shared by
// several instructions keeps its first assignment (shared dynamic state,
// matching the semantics it had when the state lived in the struct).
func (p *Program) assignSlots() {
	pcs := make([]uint64, 0, len(p.insts))
	for pc := range p.insts {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(a, b int) bool { return pcs[a] < pcs[b] })
	for _, pc := range pcs {
		i := p.insts[pc]
		for _, b := range []any{i.Dir, i.Tgt, i.Mem, i.Sem} {
			if s, ok := b.(slotted); ok && s.slotID() == 0 {
				p.nSlots++
				s.setSlot(p.nSlots)
			}
		}
	}
}

// At returns the instruction at pc, or nil outside the image (wrong-path
// fetch beyond the program fetches garbage, modelled as nil -> NOP).
func (p *Program) At(pc uint64) *Inst { return p.insts[pc] }

// Len returns the number of instructions in the image.
func (p *Program) Len() int { return len(p.insts) }

// Validate checks the image is closed: every static target exists, every
// branch has a direction behaviour, every indirect a target behaviour.  It
// also assigns State slots to stateful behaviours, finalizing the image:
// after a successful Validate the Program is immutable (unless SingleUse)
// and may be shared across concurrent simulations.
func (p *Program) Validate() error {
	p.assignSlots()
	for pc, i := range p.insts {
		if i.PC != pc {
			return fmt.Errorf("program %s: inst PC %#x filed under %#x", p.Name, i.PC, pc)
		}
		switch i.Kind {
		case KindBranch:
			if i.Dir == nil {
				return fmt.Errorf("program %s: branch at %#x has no direction behaviour", p.Name, pc)
			}
			if p.insts[i.Target] == nil {
				return fmt.Errorf("program %s: branch at %#x targets %#x outside image", p.Name, pc, i.Target)
			}
		case KindJump, KindCall:
			if p.insts[i.Target] == nil {
				return fmt.Errorf("program %s: %s at %#x targets %#x outside image", p.Name, i.Kind, pc, i.Target)
			}
		case KindIndirect:
			if i.Tgt == nil {
				return fmt.Errorf("program %s: indirect at %#x has no target behaviour", p.Name, pc)
			}
		}
		if i.Kind == KindOp || i.Kind == KindBranch {
			// Fall-through successor must exist.
			if p.insts[pc+uint64(p.InstBytes)] == nil {
				return fmt.Errorf("program %s: %s at %#x falls through outside image", p.Name, i.Kind, pc)
			}
		}
		if (i.Class == ClassLoad || i.Class == ClassStore) && i.Mem == nil {
			return fmt.Errorf("program %s: memory op at %#x has no address behaviour", p.Name, pc)
		}
	}
	if p.insts[p.Entry] == nil {
		return fmt.Errorf("program %s: entry %#x outside image", p.Name, p.Entry)
	}
	return nil
}
