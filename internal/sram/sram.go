// Package sram models the synchronous memories backing predictor
// sub-components.
//
// The paper stresses (§III-D) that predictor structures ought to be
// implemented as area-efficient single- or dual-ported SRAMs, and that the
// metadata field exists partly to avoid a second read port at update time.
// This package gives every table an explicit Spec (entries × width × ports)
// so that:
//
//   - port discipline can be *checked*: a Mem panics if a cycle issues more
//     reads or writes than the spec allows (catching designs that silently
//     assume extra ports — precisely the modelling error a software-only
//     simulator hides);
//   - storage and area roll up mechanically into the Fig. 8/9 area model
//     (package internal/area) from the same parameters the RTL would use.
package sram

import "fmt"

// Spec describes one synchronous memory.
type Spec struct {
	Name       string
	Entries    int // number of rows
	Width      int // bits per row
	ReadPorts  int
	WritePorts int
}

// Bits returns the total storage in bits.
func (s Spec) Bits() int { return s.Entries * s.Width }

// Bytes returns the total storage in bytes (rounded up).
func (s Spec) Bytes() int { return (s.Bits() + 7) / 8 }

func (s Spec) String() string {
	return fmt.Sprintf("%s: %dx%db (%dR%dW)", s.Name, s.Entries, s.Width, s.ReadPorts, s.WritePorts)
}

// Budget is the storage accounting a sub-component reports: the memories it
// instantiates plus any flop-based state (history registers, valid bits kept
// out of SRAM, ...).
type Budget struct {
	Mems     []Spec
	FlopBits int
}

// TotalBits returns SRAM bits plus flop bits.
func (b Budget) TotalBits() int {
	n := b.FlopBits
	for _, m := range b.Mems {
		n += m.Bits()
	}
	return n
}

// TotalBytes returns the budget in bytes (rounded up).
func (b Budget) TotalBytes() int { return (b.TotalBits() + 7) / 8 }

// Add merges another budget into b and returns the result.
func (b Budget) Add(o Budget) Budget {
	return Budget{
		Mems:     append(append([]Spec{}, b.Mems...), o.Mems...),
		FlopBits: b.FlopBits + o.FlopBits,
	}
}

// Mem is a cycle-accounted memory of uint64 rows. Rows wider than 64 bits
// are modelled as multiple Mems or by packing; predictor entries in this
// code base always fit one word per logical field.
type Mem struct {
	spec   Spec
	rows   []uint64
	cycle  uint64
	reads  int
	writes int

	// Stats for the energy/port-pressure report.
	TotalReads  uint64
	TotalWrites uint64
	// CheckPorts enables per-cycle port-overuse panics.  Off by default (the
	// full-core simulator folds multiple pipeline events into one host call);
	// unit tests and the strict composer mode enable it to audit designs.
	CheckPorts bool

	// MaxReadsPerCycle / MaxWritesPerCycle record the worst observed port
	// pressure regardless of CheckPorts, so reports can flag designs that
	// would need more ports than their spec claims.
	MaxReadsPerCycle  int
	MaxWritesPerCycle int
}

// New allocates a memory conforming to spec.
func New(spec Spec) *Mem {
	if spec.Entries <= 0 || spec.Width <= 0 {
		panic(fmt.Sprintf("sram: invalid spec %v", spec))
	}
	return &Mem{spec: spec, rows: make([]uint64, spec.Entries)}
}

// Spec returns the memory's specification.
func (m *Mem) Spec() Spec { return m.spec }

// Tick advances the memory to a new cycle, resetting port usage.
func (m *Mem) Tick(cycle uint64) {
	if cycle != m.cycle {
		m.cycle = cycle
		m.reads, m.writes = 0, 0
	}
}

// Read returns row idx, consuming one read port in the current cycle.
func (m *Mem) Read(idx int) uint64 {
	m.reads++
	m.TotalReads++
	if m.reads > m.MaxReadsPerCycle {
		m.MaxReadsPerCycle = m.reads
	}
	if m.CheckPorts && m.reads > m.spec.ReadPorts {
		panic(fmt.Sprintf("sram: %s exceeded %d read ports in one cycle", m.spec.Name, m.spec.ReadPorts))
	}
	return m.rows[idx%m.spec.Entries]
}

// Write stores v (masked to the row width) at row idx, consuming one write
// port in the current cycle.
func (m *Mem) Write(idx int, v uint64) {
	m.writes++
	m.TotalWrites++
	if m.writes > m.MaxWritesPerCycle {
		m.MaxWritesPerCycle = m.writes
	}
	if m.CheckPorts && m.writes > m.spec.WritePorts {
		panic(fmt.Sprintf("sram: %s exceeded %d write ports in one cycle", m.spec.Name, m.spec.WritePorts))
	}
	if m.spec.Width < 64 {
		v &= (uint64(1) << uint(m.spec.Width)) - 1
	}
	m.rows[idx%m.spec.Entries] = v
}

// Peek reads row idx without consuming a port (for tests and debug dumps).
func (m *Mem) Peek(idx int) uint64 { return m.rows[idx%m.spec.Entries] }

// Poke writes row idx without consuming a port (for tests and repair paths
// that model flop-based restore).
func (m *Mem) Poke(idx int, v uint64) {
	if m.spec.Width < 64 {
		v &= (uint64(1) << uint(m.spec.Width)) - 1
	}
	m.rows[idx%m.spec.Entries] = v
}

// Reset zeroes the memory contents and statistics.
func (m *Mem) Reset() {
	for i := range m.rows {
		m.rows[i] = 0
	}
	m.reads, m.writes = 0, 0
	m.TotalReads, m.TotalWrites = 0, 0
	m.MaxReadsPerCycle, m.MaxWritesPerCycle = 0, 0
}
