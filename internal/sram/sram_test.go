package sram

import (
	"strings"
	"testing"
	"testing/quick"
)

func spec() Spec {
	return Spec{Name: "bht", Entries: 16, Width: 2, ReadPorts: 1, WritePorts: 1}
}

func TestSpecAccounting(t *testing.T) {
	s := Spec{Name: "t", Entries: 2048, Width: 2}
	if s.Bits() != 4096 {
		t.Errorf("Bits = %d, want 4096", s.Bits())
	}
	if s.Bytes() != 512 {
		t.Errorf("Bytes = %d, want 512", s.Bytes())
	}
	s.Width = 3
	if s.Bytes() != (2048*3+7)/8 {
		t.Errorf("Bytes rounding wrong: %d", s.Bytes())
	}
	if !strings.Contains(s.String(), "2048x3b") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestBudgetAdd(t *testing.T) {
	a := Budget{Mems: []Spec{{Name: "a", Entries: 8, Width: 8}}, FlopBits: 10}
	b := Budget{Mems: []Spec{{Name: "b", Entries: 4, Width: 4}}, FlopBits: 5}
	sum := a.Add(b)
	if sum.TotalBits() != 8*8+4*4+15 {
		t.Errorf("TotalBits = %d", sum.TotalBits())
	}
	if len(sum.Mems) != 2 {
		t.Errorf("merged mems = %d, want 2", len(sum.Mems))
	}
	// Add must not mutate its operands.
	if a.TotalBits() != 74 || b.TotalBits() != 21 {
		t.Error("Add mutated operands")
	}
}

func TestMemReadWrite(t *testing.T) {
	m := New(spec())
	m.Tick(1)
	m.Write(3, 0b11)
	m.Tick(2)
	if got := m.Read(3); got != 0b11 {
		t.Errorf("Read(3) = %d, want 3", got)
	}
	// Width masking.
	m.Tick(3)
	m.Write(4, 0xff)
	if got := m.Peek(4); got != 0b11 {
		t.Errorf("width mask: got %d, want 3", got)
	}
}

func TestMemIndexWraps(t *testing.T) {
	m := New(spec())
	m.Poke(16+3, 2)
	if m.Peek(3) != 2 {
		t.Error("index must wrap modulo entries")
	}
}

func TestPortCheckPanics(t *testing.T) {
	m := New(spec())
	m.CheckPorts = true
	m.Tick(1)
	m.Read(0)
	defer func() {
		if recover() == nil {
			t.Error("expected port-overuse panic")
		}
	}()
	m.Read(1) // second read in same cycle on a 1R mem
}

func TestPortPressureRecordedWithoutPanic(t *testing.T) {
	m := New(spec())
	m.Tick(1)
	m.Read(0)
	m.Read(1)
	m.Read(2)
	if m.MaxReadsPerCycle != 3 {
		t.Errorf("MaxReadsPerCycle = %d, want 3", m.MaxReadsPerCycle)
	}
	m.Tick(2)
	m.Read(0)
	if m.MaxReadsPerCycle != 3 {
		t.Errorf("max must persist across cycles, got %d", m.MaxReadsPerCycle)
	}
}

func TestTickResetsPortUse(t *testing.T) {
	m := New(spec())
	m.CheckPorts = true
	m.Tick(1)
	m.Read(0)
	m.Tick(2)
	m.Read(0) // must not panic: new cycle
	m.Write(0, 1)
}

func TestResetClearsEverything(t *testing.T) {
	m := New(spec())
	m.Tick(1)
	m.Write(5, 3)
	m.Read(5)
	m.Reset()
	if m.Peek(5) != 0 || m.TotalReads != 0 || m.TotalWrites != 0 || m.MaxReadsPerCycle != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	m := New(Spec{Name: "wide", Entries: 64, Width: 48, ReadPorts: 4, WritePorts: 4})
	f := func(idx int, v uint64) bool {
		if idx < 0 {
			idx = -idx
		}
		m.Poke(idx, v)
		return m.Peek(idx) == v&((1<<48)-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewPanicsOnBadSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero-entry spec")
		}
	}()
	New(Spec{Name: "bad", Entries: 0, Width: 2})
}
