package pred

import "testing"

func TestDefaultConfigGeometry(t *testing.T) {
	c := DefaultConfig()
	if !c.Valid() {
		t.Fatal("default config invalid")
	}
	if c.PktBytes() != 16 {
		t.Errorf("PktBytes = %d, want 16 (Table II)", c.PktBytes())
	}
	if c.InstOff() != 2 || c.PktOff() != 4 {
		t.Errorf("offsets = %d/%d, want 2/4", c.InstOff(), c.PktOff())
	}
}

func TestPacketBaseAndSlots(t *testing.T) {
	c := DefaultConfig()
	if got := c.PacketBase(0x1234); got != 0x1230 {
		t.Errorf("PacketBase = %#x", got)
	}
	if got := c.SlotPC(0x1234, 3); got != 0x123C {
		t.Errorf("SlotPC = %#x", got)
	}
	if got := c.SlotOf(0x123C); got != 3 {
		t.Errorf("SlotOf = %d", got)
	}
	// Round trip: every slot of every packet maps back.
	for base := uint64(0x1000); base < 0x1100; base += 16 {
		for i := 0; i < c.FetchWidth; i++ {
			pc := c.SlotPC(base, i)
			if c.PacketBase(pc) != base || c.SlotOf(pc) != i {
				t.Fatalf("slot round trip failed at %#x slot %d", base, i)
			}
		}
	}
}

func TestWideConfigGeometry(t *testing.T) {
	// The paper's RVC configuration: 16-byte packets of eight 2-byte slots.
	c := Config{FetchWidth: 8, InstBytes: 2}
	if !c.Valid() || c.PktBytes() != 16 {
		t.Fatal("wide config geometry wrong")
	}
	if c.SlotOf(c.SlotPC(0x2000, 7)) != 7 {
		t.Error("wide slot round trip failed")
	}
}

func TestInvalidConfigs(t *testing.T) {
	for _, c := range []Config{
		{FetchWidth: 3, InstBytes: 4},
		{FetchWidth: 4, InstBytes: 3},
		{FetchWidth: 0, InstBytes: 4},
	} {
		if c.Valid() {
			t.Errorf("config %+v should be invalid", c)
		}
	}
}

func TestCFIKindStrings(t *testing.T) {
	for k := KindNone; k <= KindIndirect; k++ {
		if k.String() == "invalid" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if CFIKind(99).String() != "invalid" {
		t.Error("out-of-range kind should be invalid")
	}
}
