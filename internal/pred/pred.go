// Package pred defines the COBRA predictor sub-component interface (§III of
// the paper): the prediction packet types, the five prediction events
// (predict, fire, mispredict, repair, update), the opaque metadata contract,
// and the Subcomponent interface every library component implements.
//
// Interface obligations reproduced from the paper:
//
//   - Prediction begins when the sub-component receives the fetch PC at
//     cycle 0; a response may come at any cycle p >= 1 (§III-A).  In this
//     model a component declares Latency() = p and its Predict result takes
//     effect at that stage; the composer enforces the "same or more powerful
//     prediction for all d > p" rule by pinning the component's overlay from
//     stage p onward (monotone refinement).
//   - Global and local histories are provided only at the end of the first
//     cycle (§III-B, Fig. 2), so a latency-1 component must not read them;
//     the composer passes zeroed history to latency-1 components and the
//     conformance suite checks the library honours this.
//   - A sub-component outputs a vector of predictions for the whole fetch
//     packet (§III-C); single-prediction components fill one slot.
//   - Each component declares the metadata it wants to store (MetaWords);
//     whatever it returns from Predict is handed back verbatim at fire,
//     mispredict, repair, and update time (§III-D/E).
//   - predict_in (§III-F): a component receives the stage-p outputs of its
//     input nodes and may pass them through, override fields, or arbitrate
//     among several inputs.
package pred

import (
	"fmt"

	"cobra/internal/sram"
)

// CFIKind is a tagged predictor's belief about what control-flow
// instruction a slot holds (BTBs learn this alongside the target).
type CFIKind uint8

// CFI kinds a predictor can hint.
const (
	KindNone CFIKind = iota
	KindBranch
	KindJump
	KindCall
	KindRet
	KindIndirect
)

func (k CFIKind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindBranch:
		return "branch"
	case KindJump:
		return "jump"
	case KindCall:
		return "call"
	case KindRet:
		return "ret"
	case KindIndirect:
		return "indirect"
	}
	return "invalid"
}

// Pred is the prediction for one instruction slot of a fetch packet.  The
// zero value means "no prediction" (pure pass-through).  A component
// overrides only the field groups it has an opinion about: direction
// (DirValid+Taken) and/or target (TgtValid+Target), mirroring Fig. 3's BTB
// that augments an incoming direction with a target.
type Pred struct {
	DirValid bool
	Taken    bool

	TgtValid bool
	Target   uint64

	// IsCFI marks that the predictor believes this slot holds a
	// control-flow instruction (a BTB hit implies this even when only the
	// target is provided); Kind refines the belief when known.
	IsCFI bool
	Kind  CFIKind

	// DirProvider / TgtProvider name the sub-component whose opinion each
	// field group carries — attribution for Fig. 8-style provider stats and
	// for the tournament's selector update.
	DirProvider string
	TgtProvider string
}

// OverlayOn returns base with p's valid field groups overriding it.
func (p Pred) OverlayOn(base Pred) Pred {
	out := base
	if p.DirValid {
		out.DirValid = true
		out.Taken = p.Taken
		out.DirProvider = p.DirProvider
	}
	if p.TgtValid {
		out.TgtValid = true
		out.Target = p.Target
		out.TgtProvider = p.TgtProvider
	}
	if p.IsCFI {
		out.IsCFI = true
	}
	if p.Kind != KindNone {
		out.Kind = p.Kind
	}
	return out
}

// Packet is a full fetch packet's worth of per-slot predictions.
type Packet []Pred

// Clone returns a copy of the packet.
func (pk Packet) Clone() Packet {
	out := make(Packet, len(pk))
	copy(out, pk)
	return out
}

// OverlayOn applies each slot of pk over base, returning a new packet.
func (pk Packet) OverlayOn(base Packet) Packet {
	out := make(Packet, len(pk))
	for i := range pk {
		var b Pred
		if i < len(base) {
			b = base[i]
		}
		out[i] = pk[i].OverlayOn(b)
	}
	return out
}

// Query carries everything a sub-component may consult at predict time.
type Query struct {
	Cycle uint64
	PC    uint64 // fetch packet base PC

	// Histories (end-of-Fetch-1 values; zero for latency-1 components).
	GHist uint64   // low 64 bits of global history, most recent in bit 0
	GRaw  []uint64 // full global history words (long-history components)
	LHist uint64   // local history for this PC
	Path  uint64   // path history

	// In holds the predict_in packets, one per input edge of the topology,
	// evaluated at this component's response stage.
	In []Packet
}

// Response is a component's answer: an overlay packet (zero slots pass
// through) plus the metadata to round-trip through the history file.
type Response struct {
	Overlay Packet
	Meta    []uint64
}

// SlotInfo is the per-slot resolution/speculation record handed to the
// fire/mispredict/repair/update events.
type SlotInfo struct {
	Valid bool   // slot held a (committed or speculatively fetched) CFI
	PC    uint64 // the instruction's own PC

	IsBranch bool // conditional branch
	IsJump   bool // unconditional direct jump
	IsCall   bool
	IsRet    bool
	IsIndir  bool // indirect target

	Taken     bool   // resolved direction (update/mispredict/repair); predicted direction for fire
	PredTaken bool   // the direction the final pipeline predicted
	Target    uint64 // resolved target (update/mispredict); predicted for fire

	Mispredicted bool // this slot is the offending branch (mispredict event)
}

// Event is the payload of the four non-predict signals.  Per §III-E, the
// same fetch PC and histories provided at predict time come back, along with
// the component's own metadata, so indices and read data can be regenerated
// without extra ports.
type Event struct {
	Cycle uint64
	PC    uint64 // fetch packet base PC of the original prediction

	GHist uint64
	GRaw  []uint64
	LHist uint64
	Path  uint64

	Meta  []uint64 // this component's predict-time metadata (may be nil if it declared 0 words)
	Slots []SlotInfo
}

// BranchSlot returns the first valid conditional-branch slot, or -1.
func (e *Event) BranchSlot() int {
	for i := range e.Slots {
		if e.Slots[i].Valid && e.Slots[i].IsBranch {
			return i
		}
	}
	return -1
}

// Subcomponent is the COBRA sub-component interface.  Implementations are
// sequential hardware models: Predict must not mutate prediction state
// (reads may be counted against SRAM ports); all learning happens in the
// event methods.
type Subcomponent interface {
	// Name identifies the component instance in topologies and reports.
	Name() string
	// Latency is the response stage p >= 1 (§III-A).
	Latency() int
	// MetaWords is the length of the metadata slice the component returns
	// from Predict and receives back in events (§III-D).
	MetaWords() int
	// NumInputs is how many predict_in edges the component requires
	// (0 for leaves, 1 for augmenting/overriding components, 2+ for
	// arbitration schemes such as the tournament selector, §III-F).
	NumInputs() int

	// Predict is the predict signal: begin generating a prediction for the
	// fetch PC in q.  The returned overlay takes effect at stage Latency().
	Predict(q *Query) Response

	// Fire speculatively updates local state for a prior predict PC.
	Fire(e *Event)
	// Mispredict is the fast, immediate update on a mispredicted branch.
	Mispredict(e *Event)
	// Repair restores misspeculated local state for a given predict PC.
	Repair(e *Event)
	// Update is the slow commit-time update from a committing branch.
	Update(e *Event)

	// Reset returns the component to power-on state.
	Reset()
	// Tick advances SRAM port accounting to the given cycle.
	Tick(cycle uint64)
	// Budget reports the component's storage for the area model.
	Budget() sram.Budget
}

// Validate checks basic interface-contract conformance of a component
// (sane latency, metadata declaration, input arity) and returns an error
// describing the first violation.  The full behavioural conformance suite
// lives in the components package tests.
func Validate(s Subcomponent) error {
	if s.Name() == "" {
		return fmt.Errorf("pred: component has empty name")
	}
	if s.Latency() < 1 {
		return fmt.Errorf("pred: %s declares latency %d; interface requires p >= 1", s.Name(), s.Latency())
	}
	if s.MetaWords() < 0 {
		return fmt.Errorf("pred: %s declares negative metadata length", s.Name())
	}
	if s.NumInputs() < 0 {
		return fmt.Errorf("pred: %s declares negative input arity", s.Name())
	}
	return nil
}

// NopEvents provides no-op implementations of the event methods for
// components that ignore a subset of the five signals (§III-E: components
// "may choose to use and ignore arbitrary subsets").
type NopEvents struct{}

// Fire implements Subcomponent.
func (NopEvents) Fire(*Event) {}

// Mispredict implements Subcomponent.
func (NopEvents) Mispredict(*Event) {}

// Repair implements Subcomponent.
func (NopEvents) Repair(*Event) {}
