package pred

import "cobra/internal/bitutil"

// Config captures the fetch geometry every sub-component and the composer
// agree on: how many instruction slots a fetch packet holds and how wide an
// instruction is.  The evaluated BOOM configuration (Table II) fetches
// 16-byte packets of four 4-byte instructions.
type Config struct {
	FetchWidth int // instruction slots per fetch packet
	InstBytes  int // bytes per instruction slot
}

// DefaultConfig matches the paper's Table II frontend: 16-byte fetch,
// 4-wide.
func DefaultConfig() Config { return Config{FetchWidth: 4, InstBytes: 4} }

// InstOff is log2(InstBytes): the PC bits constant within an instruction.
func (c Config) InstOff() uint { return bitutil.Clog2(c.InstBytes) }

// PktBytes is the fetch packet size in bytes.
func (c Config) PktBytes() int { return c.FetchWidth * c.InstBytes }

// PktOff is log2(PktBytes): the PC bits constant within a fetch packet.
func (c Config) PktOff() uint { return bitutil.Clog2(c.PktBytes()) }

// PacketBase aligns pc down to its fetch packet base.
func (c Config) PacketBase(pc uint64) uint64 {
	return pc &^ (uint64(c.PktBytes()) - 1)
}

// SlotPC returns the PC of slot i within the packet at base.
func (c Config) SlotPC(base uint64, i int) uint64 {
	return c.PacketBase(base) + uint64(i*c.InstBytes)
}

// SlotOf returns the slot index of pc within its fetch packet.
func (c Config) SlotOf(pc uint64) int {
	return int(pc>>c.InstOff()) & (c.FetchWidth - 1)
}

// Valid reports whether the geometry is usable (positive power-of-two sizes).
func (c Config) Valid() bool {
	return bitutil.IsPow2(c.FetchWidth) && bitutil.IsPow2(c.InstBytes)
}
