package pred

import (
	"testing"
	"testing/quick"

	"cobra/internal/sram"
)

func TestOverlayOnFieldGroups(t *testing.T) {
	base := Pred{DirValid: true, Taken: false, DirProvider: "bim",
		TgtValid: true, Target: 0x100, TgtProvider: "btb"}

	// Direction-only override keeps the base target.
	dir := Pred{DirValid: true, Taken: true, DirProvider: "tage"}
	got := dir.OverlayOn(base)
	if !got.Taken || got.DirProvider != "tage" {
		t.Errorf("direction override failed: %+v", got)
	}
	if !got.TgtValid || got.Target != 0x100 || got.TgtProvider != "btb" {
		t.Errorf("target must pass through: %+v", got)
	}

	// Target-only override keeps the base direction (Fig. 3 BTB behaviour).
	tgt := Pred{TgtValid: true, Target: 0x200, TgtProvider: "btb2", IsCFI: true}
	got = tgt.OverlayOn(base)
	if got.Taken || got.DirProvider != "bim" {
		t.Errorf("direction must pass through: %+v", got)
	}
	if got.Target != 0x200 || !got.IsCFI {
		t.Errorf("target override failed: %+v", got)
	}

	// Empty overlay is the identity (pure pass-through).
	if got := (Pred{}).OverlayOn(base); got != base {
		t.Errorf("empty overlay changed base: %+v", got)
	}
}

func TestOverlayIdentityProperty(t *testing.T) {
	f := func(dirValid, taken, tgtValid bool, target uint64) bool {
		p := Pred{DirValid: dirValid, Taken: taken && dirValid,
			TgtValid: tgtValid, Target: target}
		if tgtValid {
			p.Target = target
		} else {
			p.Target = 0
		}
		// Overlaying a prediction on the zero value yields itself.
		got := p.OverlayOn(Pred{})
		return got.DirValid == p.DirValid && got.TgtValid == p.TgtValid &&
			(!p.DirValid || got.Taken == p.Taken) &&
			(!p.TgtValid || got.Target == p.Target)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOverlayAssociativity(t *testing.T) {
	// (a over (b over c)) == ((a over b applied at packet level)) — for
	// single fields: overlaying is right-biased and associative.
	a := Pred{DirValid: true, Taken: true, DirProvider: "a"}
	b := Pred{TgtValid: true, Target: 5, TgtProvider: "b"}
	c := Pred{DirValid: true, Taken: false, DirProvider: "c",
		TgtValid: true, Target: 9, TgtProvider: "c"}
	left := a.OverlayOn(b.OverlayOn(c))
	if !left.DirValid || !left.Taken || left.DirProvider != "a" {
		t.Errorf("direction should come from a: %+v", left)
	}
	if left.Target != 5 || left.TgtProvider != "b" {
		t.Errorf("target should come from b: %+v", left)
	}
}

func TestPacketOverlay(t *testing.T) {
	base := Packet{{DirValid: true, Taken: false}, {}}
	over := Packet{{}, {DirValid: true, Taken: true, DirProvider: "loop"}}
	got := over.OverlayOn(base)
	if got[0] != base[0] {
		t.Errorf("slot 0 must pass through: %+v", got[0])
	}
	if !got[1].Taken || got[1].DirProvider != "loop" {
		t.Errorf("slot 1 must be overridden: %+v", got[1])
	}
}

func TestPacketOverlayLengthMismatch(t *testing.T) {
	over := Packet{{DirValid: true, Taken: true}, {DirValid: true}}
	got := over.OverlayOn(Packet{}) // shorter base
	if len(got) != 2 || !got[0].Taken {
		t.Errorf("overlay on short base: %+v", got)
	}
}

func TestPacketClone(t *testing.T) {
	p := Packet{{DirValid: true}}
	q := p.Clone()
	q[0].DirValid = false
	if !p[0].DirValid {
		t.Error("Clone aliases backing array")
	}
}

func TestEventBranchSlot(t *testing.T) {
	e := &Event{Slots: []SlotInfo{
		{Valid: true, IsJump: true},
		{Valid: false, IsBranch: true},
		{Valid: true, IsBranch: true},
	}}
	if got := e.BranchSlot(); got != 2 {
		t.Errorf("BranchSlot = %d, want 2", got)
	}
	if got := (&Event{}).BranchSlot(); got != -1 {
		t.Errorf("empty event BranchSlot = %d, want -1", got)
	}
}

type fakeComp struct {
	NopEvents
	name    string
	latency int
	meta    int
	inputs  int
}

func (f *fakeComp) Name() string            { return f.name }
func (f *fakeComp) Latency() int            { return f.latency }
func (f *fakeComp) MetaWords() int          { return f.meta }
func (f *fakeComp) NumInputs() int          { return f.inputs }
func (f *fakeComp) Predict(*Query) Response { return Response{} }
func (f *fakeComp) Update(*Event)           {}
func (f *fakeComp) Reset()                  {}
func (f *fakeComp) Tick(uint64)             {}
func (f *fakeComp) Budget() sram.Budget     { return sram.Budget{} }

func TestValidate(t *testing.T) {
	ok := &fakeComp{name: "x", latency: 1}
	if err := Validate(ok); err != nil {
		t.Errorf("valid component rejected: %v", err)
	}
	for _, bad := range []*fakeComp{
		{name: "", latency: 1},
		{name: "x", latency: 0},
		{name: "x", latency: 1, meta: -1},
		{name: "x", latency: 1, inputs: -1},
	} {
		if err := Validate(bad); err == nil {
			t.Errorf("Validate accepted bad component %+v", bad)
		}
	}
}
