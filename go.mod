module cobra

go 1.22
