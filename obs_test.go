package cobra

// Integration tests for the observability layer: the zero-cost-when-disabled
// contract, per-PC attribution against the run counters, and the exporters
// driven by a real simulation.

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"reflect"
	"runtime"
	"testing"

	"cobra/internal/interval"
	"cobra/internal/spec"
	"cobra/internal/stats"
)

const obsTestInsts = 60_000

// TestObserverZeroCost runs the same simulation bare and fully instrumented
// (tracer + profile + metrics); every counter must be bit-identical — the
// observability layer observes, it never steers.
func TestObserverZeroCost(t *testing.T) {
	rc := RunConfig{Design: TAGEL(), Workload: "gcc", MaxInsts: obsTestInsts}
	bare, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	rc.Observer = NewTracer(1 << 10)
	rc.Profile = NewBranchProfile()
	rc.Metrics = NewMetrics()
	instrumented, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, instrumented) {
		t.Fatalf("instrumentation changed results:\nbare:         %+v\ninstrumented: %+v", bare, instrumented)
	}
}

// TestH2PSumInvariant is the acceptance criterion: per-PC mispredict counts
// sum to stats.Sim.Mispredicts on a Table I design.
func TestH2PSumInvariant(t *testing.T) {
	for _, d := range Designs() {
		prof := NewBranchProfile()
		res, err := Run(RunConfig{Design: d, Workload: "leela", MaxInsts: obsTestInsts, Profile: prof})
		if err != nil {
			t.Fatal(err)
		}
		var sum uint64
		for _, st := range prof.Top(0) {
			sum += st.Misp
		}
		if sum != res.Mispredicts || prof.TotalMispredicts() != res.Mispredicts {
			t.Errorf("%s: per-PC sum %d / profile %d != counter %d",
				d.Name, sum, prof.TotalMispredicts(), res.Mispredicts)
		}
		if cfis := res.Branches + res.Jumps + res.IndirectJumps; prof.TotalExecs() != cfis {
			t.Errorf("%s: profile execs %d != committed CFIs %d", d.Name, prof.TotalExecs(), cfis)
		}
	}
}

// TestEventStreamFromSim checks the traced stream of a real run: events
// arrive, cycles are monotone, the five interface kinds all fire, and both
// exporters accept the stream.
func TestEventStreamFromSim(t *testing.T) {
	tr := NewTracer(1 << 14)
	if _, err := Run(RunConfig{Design: B2(), Workload: "mcf", MaxInsts: obsTestInsts, Observer: tr}); err != nil {
		t.Fatal(err)
	}
	evs := tr.Events()
	if len(evs) == 0 {
		t.Fatal("no events traced")
	}
	seen := map[string]bool{}
	var prev uint64
	for i := range evs {
		if evs[i].Cycle < prev {
			t.Fatalf("event %d: cycle went backwards (%d < %d)", i, evs[i].Cycle, prev)
		}
		prev = evs[i].Cycle
		seen[evs[i].Kind.String()] = true
	}
	for _, kind := range []string{"predict", "fire", "mispredict", "repair", "update", "redirect", "squash"} {
		if !seen[kind] {
			t.Errorf("no %q events in a %d-instruction run", kind, obsTestInsts)
		}
	}

	var bin bytes.Buffer
	if err := WriteBinaryEvents(&bin, evs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinaryEvents(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, evs) {
		t.Fatal("binary round trip of a sim stream diverged")
	}

	var cj bytes.Buffer
	if err := WriteChromeTrace(&cj, evs); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(cj.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export of a sim stream is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < len(evs) {
		t.Fatalf("chrome export lost events: %d < %d", len(doc.TraceEvents), len(evs))
	}
}

// allocsOf measures the heap allocations performed by one call to f,
// pinned to a single P the way testing.AllocsPerRun is.  Used for the
// one-shot phases (compose, arena warm-up) that AllocsPerRun's own warm-up
// call would consume.
func allocsOf(f func()) uint64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	f()
	runtime.ReadMemStats(&m1)
	return m1.Mallocs - m0.Mallocs
}

// TestPhaseAllocBudgets is the allocation-budget wall, replacing the old
// single pinned-at-20 nil-observer baseline (the per-stage packet clones and
// per-signal Query/Event escapes it pinned are gone).  Each simulation phase
// gets its own machine-independent budget:
//
//   - compose: building a Table I pipeline is construction, budgeted but not
//     hot (~160-240 allocs);
//   - warm-up: the first pass through the 32-entry history-file ring grows
//     the per-entry arenas (snapshots, metadata, stage buffers) exactly once
//     (~230-260 allocs for 4096 steps);
//   - steady state: the warmed Predict/Commit loop must allocate NOTHING —
//     zero is exact, enforced by testing.AllocsPerRun;
//   - steady-state simulate: a full uarch run (fetch buffer, packets, slot
//     vectors, pending entries all pooled) stays under a fraction of an
//     allocation per instruction once the workload program is memoized.
//
// A single new allocation per op would dwarf the 2% observer overhead
// budget, so these counts are the CI-enforceable form of the timing guard;
// see DESIGN.md §9/§12, BenchmarkPipelineNoObserver, and cmd/cobra-bench
// (which records the same numbers in BENCH_*.json).
func TestPhaseAllocBudgets(t *testing.T) {
	EnableFlightRecorder(0) // the budgets must hold with the recorder armed
	const (
		composeBudget = 512 // allocs to build one Table I design
		warmupBudget  = 768 // allocs for the first 4096 Predict/Commit steps
		warmupSteps   = 4096
	)
	for _, d := range Designs() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			if got := allocsOf(func() {
				if _, err := d.Build(); err != nil {
					t.Fatal(err)
				}
			}); got > composeBudget {
				t.Errorf("compose: %d allocs, budget %d", got, composeBudget)
			}
			p, err := d.Build()
			if err != nil {
				t.Fatal(err)
			}
			cycle := uint64(0)
			step := func() {
				e, _ := p.Predict(cycle, 0x1000+(cycle%64)*16)
				if e != nil {
					p.Commit(cycle, e)
				}
				cycle++
			}
			if got := allocsOf(func() {
				for i := 0; i < warmupSteps; i++ {
					step()
				}
			}); got > warmupBudget {
				t.Errorf("warmup: %d allocs for %d steps, budget %d", got, warmupSteps, warmupBudget)
			}
			if avg := testing.AllocsPerRun(2000, step); avg != 0 {
				t.Errorf("steady state: %.2f allocs per Predict/Commit op, want 0", avg)
			}
		})
	}
}

// TestSimulateAllocBudget pins the steady-state allocation rate of a full
// out-of-order simulation: with the workload program memoized, a 50k-inst
// run must stay under 0.2 allocs per committed instruction (measured ~0.014;
// the seed revision sat near 4.4).
func TestSimulateAllocBudget(t *testing.T) {
	EnableFlightRecorder(0) // the budget must hold with the recorder armed
	const insts = 50_000
	rc := RunConfig{Design: TAGEL(), Workload: "gcc", MaxInsts: insts}
	if _, err := Run(rc); err != nil { // warm the workload memo
		t.Fatal(err)
	}
	got := allocsOf(func() {
		if _, err := Run(rc); err != nil {
			t.Fatal(err)
		}
	})
	if perInst := float64(got) / insts; perInst > 0.2 {
		t.Errorf("steady-state simulate: %d allocs over %d insts = %.3f/inst, budget 0.2",
			got, insts, perInst)
	}
}

// TestIntervalAllocBudget extends the phase-budget wall to the interval
// recorder: once warmed (provider table populated, H2P set membership
// established, every ring slot's Providers array grown), the sampling path —
// per-flush Tick, window closes included, plus per-mispredict H2P updates —
// must allocate NOTHING.  Zero is exact, like the steady-state Predict/Commit
// budget above: one new allocation per op would dwarf the 1% wall-time
// budget TestIntervalOverheadGuard enforces.
func TestIntervalAllocBudget(t *testing.T) {
	EnableFlightRecorder(0) // the budget must hold with the recorder armed
	r := interval.NewRecorder(1000)
	s := stats.NewSim()
	var cycle uint64
	step := func() {
		cycle += 200
		s.Instructions += 100
		s.Branches += 20
		s.Mispredicts += 2
		s.AddProviderHit("TAGE3")
		s.AddProviderHit("BIM2")
		s.AddProviderMiss("TAGE3")
		r.Mispredict(0x1000 + (cycle/200%64)*4) // 64 recurring branch PCs
		r.Tick(cycle, &s, s.Instructions/10, s.Instructions/20, s.Instructions/40)
	}
	// Warm until the ring has wrapped: every slot has hosted a window with
	// providers, so later closes reuse backing arrays instead of growing them.
	for i := 0; i < (4096+64)*10; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(2000, step); avg != 0 {
		t.Errorf("steady-state interval sampling: %.2f allocs per flush, want exactly 0", avg)
	}
	// A full simulation with sampling on stays inside the same per-inst
	// budget TestSimulateAllocBudget enforces bare: recorder construction is
	// the only addition, and it is per-run, not per-instruction.
	sp, err := spec.Preset("tage-l")
	if err != nil {
		t.Fatal(err)
	}
	sp.Workload = "gcc"
	sp.Insts = 50_000
	sp.Observe.IntervalInsts = 10_000
	if _, err := RunSpec(sp); err != nil { // warm the workload + geometry memos
		t.Fatal(err)
	}
	got := allocsOf(func() {
		if _, err := RunSpec(sp); err != nil {
			t.Fatal(err)
		}
	})
	if perInst := float64(got) / float64(sp.Insts); perInst > 0.2 {
		t.Errorf("simulate with intervals: %d allocs over %d insts = %.3f/inst, budget 0.2",
			got, sp.Insts, perInst)
	}
}

// TestIntervalOverheadGuard is the timing half of the interval budget: with
// sampling enabled at the default window, a full simulation must cost no
// more than 1% extra wall time over the same run bare.  Env-gated like
// TestObserverOverheadGuard because wall-clock ratios are only meaningful on
// quiet, comparable hardware: set COBRA_BENCH_GUARD=1 to enforce.
func TestIntervalOverheadGuard(t *testing.T) {
	if os.Getenv("COBRA_BENCH_GUARD") == "" {
		t.Skip("set COBRA_BENCH_GUARD=1 to run the timing guard")
	}
	mk := func(every uint64) *Spec {
		sp, err := spec.Preset("tage-l")
		if err != nil {
			t.Fatal(err)
		}
		sp.Workload = "gcc"
		sp.Insts = 200_000
		sp.Observe.IntervalInsts = every
		return sp
	}
	minNs := func(sp *Spec) float64 {
		if _, err := RunSpec(sp); err != nil { // warm the memos
			t.Fatal(err)
		}
		best := math.MaxFloat64
		for i := 0; i < 5; i++ { // min-of-5 damps scheduler noise
			ns := float64(testing.Benchmark(func(b *testing.B) {
				for j := 0; j < b.N; j++ {
					if _, err := RunSpec(sp); err != nil {
						b.Fatal(err)
					}
				}
			}).NsPerOp())
			if ns < best {
				best = ns
			}
		}
		return best
	}
	bare := minNs(mk(0))
	sampled := minNs(mk(interval.DefaultInsts))
	overhead := (sampled/bare - 1) * 100
	t.Logf("bare %.0f ns/op, sampled %.0f ns/op: %.2f%% interval-sampling overhead", bare, sampled, overhead)
	if overhead > 1.0 {
		t.Errorf("interval sampling costs %.2f%% wall time, budget 1%%", overhead)
	}
}
