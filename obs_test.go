package cobra

// Integration tests for the observability layer: the zero-cost-when-disabled
// contract, per-PC attribution against the run counters, and the exporters
// driven by a real simulation.

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

const obsTestInsts = 60_000

// TestObserverZeroCost runs the same simulation bare and fully instrumented
// (tracer + profile + metrics); every counter must be bit-identical — the
// observability layer observes, it never steers.
func TestObserverZeroCost(t *testing.T) {
	rc := RunConfig{Design: TAGEL(), Workload: "gcc", MaxInsts: obsTestInsts}
	bare, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	rc.Observer = NewTracer(1 << 10)
	rc.Profile = NewBranchProfile()
	rc.Metrics = NewMetrics()
	instrumented, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, instrumented) {
		t.Fatalf("instrumentation changed results:\nbare:         %+v\ninstrumented: %+v", bare, instrumented)
	}
}

// TestH2PSumInvariant is the acceptance criterion: per-PC mispredict counts
// sum to stats.Sim.Mispredicts on a Table I design.
func TestH2PSumInvariant(t *testing.T) {
	for _, d := range Designs() {
		prof := NewBranchProfile()
		res, err := Run(RunConfig{Design: d, Workload: "leela", MaxInsts: obsTestInsts, Profile: prof})
		if err != nil {
			t.Fatal(err)
		}
		var sum uint64
		for _, st := range prof.Top(0) {
			sum += st.Misp
		}
		if sum != res.Mispredicts || prof.TotalMispredicts() != res.Mispredicts {
			t.Errorf("%s: per-PC sum %d / profile %d != counter %d",
				d.Name, sum, prof.TotalMispredicts(), res.Mispredicts)
		}
		if cfis := res.Branches + res.Jumps + res.IndirectJumps; prof.TotalExecs() != cfis {
			t.Errorf("%s: profile execs %d != committed CFIs %d", d.Name, prof.TotalExecs(), cfis)
		}
	}
}

// TestEventStreamFromSim checks the traced stream of a real run: events
// arrive, cycles are monotone, the five interface kinds all fire, and both
// exporters accept the stream.
func TestEventStreamFromSim(t *testing.T) {
	tr := NewTracer(1 << 14)
	if _, err := Run(RunConfig{Design: B2(), Workload: "mcf", MaxInsts: obsTestInsts, Observer: tr}); err != nil {
		t.Fatal(err)
	}
	evs := tr.Events()
	if len(evs) == 0 {
		t.Fatal("no events traced")
	}
	seen := map[string]bool{}
	var prev uint64
	for i := range evs {
		if evs[i].Cycle < prev {
			t.Fatalf("event %d: cycle went backwards (%d < %d)", i, evs[i].Cycle, prev)
		}
		prev = evs[i].Cycle
		seen[evs[i].Kind.String()] = true
	}
	for _, kind := range []string{"predict", "fire", "mispredict", "repair", "update", "redirect", "squash"} {
		if !seen[kind] {
			t.Errorf("no %q events in a %d-instruction run", kind, obsTestInsts)
		}
	}

	var bin bytes.Buffer
	if err := WriteBinaryEvents(&bin, evs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinaryEvents(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, evs) {
		t.Fatal("binary round trip of a sim stream diverged")
	}

	var cj bytes.Buffer
	if err := WriteChromeTrace(&cj, evs); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(cj.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export of a sim stream is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < len(evs) {
		t.Fatalf("chrome export lost events: %d < %d", len(doc.TraceEvents), len(evs))
	}
}

// TestNilObserverAllocBaseline is the disabled-path regression guard: the
// warmed Predict/Commit loop without an observer must stay on the recorded
// pre-observability allocation baseline (20 allocs/op, from the seed
// revision's BenchmarkPipelinePredict — all from the per-stage packet clones).
// A single extra allocation per op would dwarf the 2% overhead budget, so
// this machine-independent count is the CI-enforceable form of the timing
// guard; see DESIGN.md §9 and BenchmarkPipelineNoObserver.
func TestNilObserverAllocBaseline(t *testing.T) {
	const baselineAllocsPerOp = 20
	p, err := TAGEL().Build()
	if err != nil {
		t.Fatal(err)
	}
	cycle := uint64(0)
	step := func() {
		e, _ := p.Predict(cycle, 0x1000+(cycle%64)*16)
		if e != nil {
			p.Commit(cycle, e)
		}
		cycle++
	}
	for i := 0; i < 4096; i++ { // warm the entry arenas
		step()
	}
	if avg := testing.AllocsPerRun(2000, step); avg != baselineAllocsPerOp {
		t.Errorf("nil-observer Predict/Commit allocates %.2f per op, recorded baseline is %d",
			avg, baselineAllocsPerOp)
	}
}
