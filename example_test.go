package cobra_test

import (
	"fmt"

	"cobra"
)

// Compose a Table I design and inspect its structure.
func ExampleDesign_Build() {
	p, err := cobra.TAGEL().Build()
	if err != nil {
		panic(err)
	}
	fmt.Println("topology:", p.Topo)
	fmt.Println("depth:", p.Depth())
	for _, c := range p.Components() {
		fmt.Printf("  %-6s latency=%d\n", c.Name(), c.Latency())
	}
	// Output:
	// topology: LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1
	// depth: 3
	//   UBTB1  latency=1
	//   BIM2   latency=2
	//   BTB2   latency=2
	//   TAGE3  latency=3
	//   LOOP3  latency=3
}

// Run a workload and read the counters.  (Numeric results depend on the
// model's calibration, so only their presence is asserted here.)
func ExampleRun() {
	res, err := cobra.Run(cobra.RunConfig{
		Design:   cobra.B2(),
		Workload: "dhrystone",
		MaxInsts: 50_000,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("committed >= 50k:", res.Instructions >= 50_000)
	fmt.Println("has cycles:", res.Cycles > 0)
	fmt.Println("branches predicted:", res.Branches > 0)
	// Output:
	// committed >= 50k: true
	// has cycles: true
	// branches predicted: true
}

// Parse the paper's arbitration notation.
func ExampleNewPipeline() {
	p, err := cobra.NewPipeline("TOURNEY3 > [GBIM2 > BTB2, LBIM2]",
		cobra.PipelineOptions{GHistBits: 32})
	if err != nil {
		panic(err)
	}
	fmt.Println(p.Topo)
	fmt.Println("generates local history provider:", p.Local != nil)
	// Output:
	// TOURNEY3 > [GBIM2 > BTB2, LBIM2]
	// generates local history provider: true
}

// Assemble a custom workload.
func ExampleCompileASM() {
	_, err := cobra.CompileASM("counter", `
start:
    li r1, 0
loop:
    addi r1, r1, 1
    li r2, 64
    blt r1, r2, loop
    j start
`)
	fmt.Println("assembled:", err == nil)
	// Output:
	// assembled: true
}
